//! Churnbench: high-density serverless tenant churn over one simulated
//! machine.
//!
//! Sweeps concurrent-tenant density far past the core count (64 → 4096
//! tenants over a handful of cores) and measures the three quantities
//! the paper's isolation argument turns on:
//!
//! * **cold-start latency** — arrival to serving, admission queueing
//!   included;
//! * **per-tenant p99 isolation** — the worst single tenant's request
//!   tail, not just the aggregate tail (aggregates hide victims);
//! * **steady-state throughput** — completed requests per simulated
//!   second.
//!
//! On top of the timings, every run audits kernel-table hygiene after
//! full churn: with slot-reusing fd/socket allocation the tables are
//! bounded by *peak concurrency*, not total tenants ever served —
//! `fds.len() <= peak_open_fds` per slot and `socks.len() <= peak_socks`
//! per instance, with nothing live after the last exit. The pre-fix
//! push-only allocator fails these audits at any density.

use ksa_desim::{Engine, EngineParams, Ns};
use ksa_envsim::tenant::{
    spawn_churn_hosts, split_key, ChurnParams, COLD_START_KEY, EXIT_KEY, REQUEST_KEY,
};
use ksa_envsim::{build_env_with, EnvKind, EnvSpec, Machine};
use ksa_kernel::world::KernelWorld;
use ksa_kernel::SpecMask;
use ksa_stats::Samples;

/// One churn run's full configuration.
#[derive(Debug, Clone, Copy)]
pub struct ChurnConfig {
    /// The machine being churned.
    pub machine: Machine,
    /// Deployment style (shared container host vs partitioned VMs).
    pub kind: EnvKind,
    /// Workload shape (density, tenant count, arrival/request rates).
    pub params: ChurnParams,
    /// Seed for the arrival schedule and every host RNG.
    pub seed: u64,
    /// Optional kernel specialization mask for every instance.
    pub spec: Option<SpecMask>,
}

impl ChurnConfig {
    /// A quick configuration: `density` tenants resident at peak,
    /// `2 * density` tenants total, on a small machine.
    pub fn quick(kind: EnvKind, density: usize, seed: u64) -> Self {
        Self {
            machine: Machine {
                cores: 4,
                mem_mib: 4 * 1024,
            },
            kind,
            params: ChurnParams::quick(density, 2 * density),
            seed,
            spec: None,
        }
    }
}

/// Everything one churn run reports.
#[derive(Debug, Clone)]
pub struct ChurnResult {
    /// Cold-start latencies, tenant-arrival order.
    pub cold_starts: Samples,
    /// Median cold start.
    pub cold_p50: u64,
    /// p99 cold start.
    pub cold_p99: u64,
    /// All request sojourns (every tenant pooled).
    pub requests: Samples,
    /// Aggregate request p99.
    pub req_p99: u64,
    /// The worst single tenant's request p99 — the per-tenant isolation
    /// number (aggregate tails hide victims).
    pub worst_tenant_p99: u64,
    /// Tenants admitted (cold-start records seen).
    pub arrived: u64,
    /// Tenants that completed their exit sequence.
    pub exited: u64,
    /// Completed requests.
    pub requests_completed: u64,
    /// Final simulated clock.
    pub sim_ns: Ns,
    /// Engine events processed.
    pub events: u64,
    /// Completed requests per simulated second.
    pub throughput_rps: f64,
    /// Post-churn fd-table length summed over every slot.
    pub fd_table_len: u64,
    /// Peak concurrently-open descriptors summed over every slot.
    pub fd_peak: u64,
    /// Descriptors still open after the final sweeps (must be 0).
    pub fd_open_after: u64,
    /// Post-churn socket-table length summed over every instance.
    pub sock_table_len: u64,
    /// Peak concurrently-live sockets summed over every instance.
    pub sock_peak: u64,
    /// Sockets still live after the final sweeps (must be 0).
    pub sock_live_after: u64,
    /// Every slot satisfied `fds.len() <= peak_open_fds` and every
    /// instance `socks.len() <= peak_socks` — the slot-reuse bound.
    pub tables_bounded: bool,
    /// Engine locks allocated at build time.
    pub locks_allocated: u32,
    /// Kernel daemons spawned.
    pub daemons_spawned: u32,
    /// FNV-1a over the clock, event count and the full record stream —
    /// the determinism digest replay/pool-width gates compare.
    pub digest: u64,
}

/// Runs one churn configuration to completion.
pub fn run_churn(cfg: &ChurnConfig) -> ChurnResult {
    let mut engine: Engine<KernelWorld> =
        Engine::new(KernelWorld::new(), EngineParams::default(), cfg.seed);
    let spec = EnvSpec::new(cfg.machine, cfg.kind);
    let built = build_env_with(&mut engine, &spec, cfg.seed, cfg.spec);
    let (locks_allocated, daemons_spawned) = {
        let k = engine.world();
        (
            k.instances.iter().map(|i| i.locks_allocated).sum(),
            k.instances.iter().map(|i| i.daemons_spawned).sum(),
        )
    };
    spawn_churn_hosts(&mut engine, &built, &cfg.params, cfg.seed);
    let res = engine
        .run()
        .unwrap_or_else(|e| panic!("churn run stalled: {e}"));

    // Decode the record stream: per-tenant cold starts, sojourns, exits.
    let mut cold = Vec::new();
    let mut reqs = Vec::new();
    let mut per_tenant: std::collections::BTreeMap<u64, Vec<u64>> = Default::default();
    let mut exited = 0u64;
    let mut digest = 0xcbf29ce484222325u64;
    let mut fold = |v: u64| digest = (digest ^ v).wrapping_mul(0x100000001b3);
    fold(res.clock);
    fold(res.events);
    for rec in &res.records {
        fold(rec.key);
        fold(rec.t);
        fold(rec.value);
        let (kind, id) = split_key(rec.key);
        match kind {
            COLD_START_KEY => cold.push(rec.value),
            REQUEST_KEY => {
                reqs.push(rec.value);
                per_tenant.entry(id).or_default().push(rec.value);
            }
            EXIT_KEY => exited += 1,
            _ => {}
        }
    }
    let worst_tenant_p99 = per_tenant
        .into_values()
        .filter_map(|v| Samples::from_values(v).p99())
        .max()
        .unwrap_or(0);

    // Post-churn table audits across the whole machine.
    let k = engine.world();
    let mut fd_table_len = 0u64;
    let mut fd_peak = 0u64;
    let mut fd_open_after = 0u64;
    let mut sock_table_len = 0u64;
    let mut sock_peak = 0u64;
    let mut sock_live_after = 0u64;
    let mut tables_bounded = true;
    for inst in &k.instances {
        for slot in &inst.state.slots {
            fd_table_len += slot.fds.len() as u64;
            fd_peak += slot.peak_open_fds;
            fd_open_after += slot.open_fds;
            tables_bounded &= slot.fds.len() as u64 <= slot.peak_open_fds;
        }
        let net = &inst.state.net;
        sock_table_len += net.socks.len() as u64;
        sock_peak += net.peak_socks;
        sock_live_after += net.live_socks;
        tables_bounded &= net.socks.len() as u64 <= net.peak_socks;
    }

    let mut cold_samples = Samples::from_values(cold);
    let mut req_samples = Samples::from_values(reqs);
    let requests_completed = req_samples.len() as u64;
    let throughput_rps = if res.clock > 0 {
        requests_completed as f64 * 1e9 / res.clock as f64
    } else {
        0.0
    };
    ChurnResult {
        cold_p50: cold_samples.median().unwrap_or(0),
        cold_p99: cold_samples.p99().unwrap_or(0),
        req_p99: req_samples.p99().unwrap_or(0),
        worst_tenant_p99,
        arrived: cold_samples.len() as u64,
        exited,
        requests_completed,
        sim_ns: res.clock,
        events: res.events,
        throughput_rps,
        fd_table_len,
        fd_peak,
        fd_open_after,
        sock_table_len,
        sock_peak,
        sock_live_after,
        tables_bounded,
        locks_allocated,
        daemons_spawned,
        digest,
        cold_starts: cold_samples,
        requests: req_samples,
    }
}

/// Runs independent churn points concurrently on the deterministic
/// worker pool (`jobs` workers; 0 = auto, 1 = sequential), returning
/// results in input order. Each point is one single-threaded engine
/// run, so any pool width yields bit-identical results. A panicking
/// point propagates after every sibling finished.
pub fn run_churn_points(configs: &[ChurnConfig], jobs: usize) -> Vec<ChurnResult> {
    let tasks: Vec<_> = configs.iter().map(|cfg| move || run_churn(cfg)).collect();
    let mut panic_payload = None;
    let results: Vec<Option<ChurnResult>> = ksa_desim::pool::run_tasks(jobs, tasks)
        .into_iter()
        .map(|r| match r {
            Ok(res) => Some(res),
            Err(payload) => {
                panic_payload.get_or_insert(payload);
                None
            }
        })
        .collect();
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    results.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn churn_conserves_tenants_and_bounds_tables() {
        let cfg = ChurnConfig::quick(EnvKind::Container(8), 64, 7);
        let res = run_churn(&cfg);
        assert_eq!(
            res.arrived, cfg.params.tenants as u64,
            "every tenant admitted"
        );
        assert_eq!(
            res.arrived, res.exited,
            "arrived == exited + live, live == 0"
        );
        assert!(res.requests_completed > 0);
        assert_eq!(res.fd_open_after, 0, "descriptors leaked past exit");
        assert_eq!(res.sock_live_after, 0, "sockets leaked past exit");
        assert!(
            res.tables_bounded,
            "table length exceeded peak concurrency: fds {}/{} socks {}/{}",
            res.fd_table_len, res.fd_peak, res.sock_table_len, res.sock_peak
        );
    }

    #[test]
    fn churn_replays_bit_identically() {
        let cfg = ChurnConfig::quick(EnvKind::Vm(2), 32, 11);
        let a = run_churn(&cfg);
        let b = run_churn(&cfg);
        assert_eq!(a.digest, b.digest);
        assert_eq!(a.sim_ns, b.sim_ns);
        assert_eq!(a.cold_p99, b.cold_p99);
        assert_eq!(a.worst_tenant_p99, b.worst_tenant_p99);
    }

    #[test]
    fn density_overload_raises_cold_starts() {
        // 16x the density on the same machine must push admission
        // queueing into the cold-start tail.
        let lo = run_churn(&ChurnConfig::quick(EnvKind::Container(4), 8, 13));
        let hi = run_churn(&ChurnConfig::quick(EnvKind::Container(4), 128, 13));
        assert!(
            hi.cold_p99 > lo.cold_p99,
            "density must cost cold starts: {} vs {}",
            hi.cold_p99,
            lo.cold_p99
        );
    }

    #[test]
    fn pool_width_is_invisible() {
        let configs: Vec<ChurnConfig> = [(EnvKind::Container(4), 16u64), (EnvKind::Vm(4), 17)]
            .into_iter()
            .map(|(kind, seed)| ChurnConfig::quick(kind, 32, seed))
            .collect();
        let seq = run_churn_points(&configs, 1);
        for jobs in [4usize, 0] {
            let par = run_churn_points(&configs, jobs);
            for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
                assert_eq!(a.digest, b.digest, "slot {i} (jobs {jobs}) diverged");
            }
        }
    }
}
