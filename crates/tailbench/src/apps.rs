//! Application profiles (Table 4 of the paper).
//!
//! Each profile encodes the characteristics the paper's results hinge on:
//!
//! * `service_ns` / `jitter_ns` — the userspace compute per request
//!   (scaled down ~50× from the real suite so simulations stay fast; all
//!   comparisons are relative).
//! * `mem_milli` — the fraction of compute that is memory-access bound,
//!   and therefore inflated by nested paging in a VM. silo's documented
//!   TLB/cache sensitivity lives here.
//! * `calls` — the per-request system-call template executed through the
//!   simulated kernel (socket I/O plus the app's own kernel footprint:
//!   file reads for xapian/sphinx, write+fsync for shore, allocation
//!   churn for moses/specjbb).

use ksa_kernel::SysNo;

/// One per-request kernel call: the syscall plus two raw argument
/// selectors (resolved against the worker's private resources).
pub type TemplateCall = (SysNo, u64, u64);

/// Profile of one tailbench application.
#[derive(Debug, Clone)]
pub struct AppProfile {
    /// Application name as in the paper.
    pub name: &'static str,
    /// Mean userspace service time per request (ns).
    pub service_ns: u64,
    /// Uniform jitter added to the service time (ns).
    pub jitter_ns: u64,
    /// Memory-bound fraction of the compute, in milli-units (0..=1000).
    /// This part pays the EPT multiplier in a VM.
    pub mem_milli: u64,
    /// Kernel calls each request performs (beyond the implicit socket
    /// read/write, which every app pays).
    pub calls: &'static [TemplateCall],
    /// Rough kernel time per request (template + socket), used to set
    /// the arrival rate for a true target utilization.
    pub kernel_ns: u64,
    /// Whether the app needs a disk (shore): skipped in the cluster
    /// experiment, as on the paper's diskless Chameleon nodes.
    pub needs_disk: bool,
    /// Whether the app is JVM-based (specjbb): skipped in the cluster
    /// experiment (the paper hit Java runtime failures there).
    pub jvm: bool,
}

impl AppProfile {
    /// Arrival rate (requests/ns) that loads `workers` cores to
    /// `util_pct`% given this profile's mean service demand.
    pub fn arrival_rate(&self, workers: usize, util_pct: u64) -> f64 {
        let per_req = self.service_ns as f64 + self.jitter_ns as f64 / 2.0 + self.kernel_ns as f64;
        (workers as f64 * util_pct as f64 / 100.0) / per_req
    }
}

/// The eight tailbench applications (Table 4).
pub fn suite() -> Vec<AppProfile> {
    vec![
        AppProfile {
            // Search engine: index reads dominate — page-cache hits with
            // occasional misses, plus mmap'd index segments.
            name: "xapian",
            service_ns: 350_000,
            jitter_ns: 150_000,
            mem_milli: 150,
            calls: &[
                (SysNo::Pread, 3, 24_000),
                (SysNo::Pread, 9, 16_000),
                (SysNo::Mmap, 16, 0),
                (SysNo::Stat, 4, 0),
            ],
            kernel_ns: 15000,
            needs_disk: false,
            jvm: false,
        },
        AppProfile {
            // In-memory key-value store: very short requests, almost no
            // kernel time beyond the socket.
            name: "masstree",
            service_ns: 45_000,
            jitter_ns: 20_000,
            mem_milli: 200,
            calls: &[(SysNo::FutexWake, 5, 1)],
            kernel_ns: 5000,
            needs_disk: false,
            jvm: false,
        },
        AppProfile {
            // Statistical machine translation: long requests, heavy
            // allocation churn (phrase tables), moderate file access.
            name: "moses",
            service_ns: 1_800_000,
            jitter_ns: 400_000,
            mem_milli: 180,
            calls: &[
                (SysNo::Mmap, 48, 1),
                (SysNo::Brk, 21, 0),
                (SysNo::Madvise, 1, 0),
                (SysNo::Pread, 6, 32_000),
                (SysNo::Munmap, 1, 0),
            ],
            kernel_ns: 600000,
            needs_disk: false,
            jvm: false,
        },
        AppProfile {
            // Speech recognition: longest requests; streams acoustic
            // model data from files while computing.
            name: "sphinx",
            service_ns: 3_500_000,
            jitter_ns: 1_200_000,
            mem_milli: 120,
            calls: &[
                (SysNo::Pread, 9, 48_000),
                (SysNo::Pread, 12, 48_000),
                (SysNo::Mmap, 32, 1),
                (SysNo::Nanosleep, 4_000, 0),
                (SysNo::Munmap, 2, 0),
            ],
            kernel_ns: 830000,
            needs_disk: false,
            jvm: false,
        },
        AppProfile {
            // Handwriting recognition: pure-CPU inference, tiny kernel
            // footprint.
            name: "img-dnn",
            service_ns: 550_000,
            jitter_ns: 180_000,
            mem_milli: 100,
            calls: &[(SysNo::Getpid, 0, 0)],
            kernel_ns: 5000,
            needs_disk: false,
            jvm: false,
        },
        AppProfile {
            // Java middleware: allocation-heavy with GC-style mprotect /
            // madvise bursts.
            name: "specjbb",
            service_ns: 280_000,
            jitter_ns: 140_000,
            mem_milli: 180,
            calls: &[
                (SysNo::Mmap, 24, 1),
                (SysNo::Mprotect, 1, 0),
                (SysNo::Madvise, 2, 0),
                (SysNo::FutexWake, 9, 2),
            ],
            kernel_ns: 95000,
            needs_disk: false,
            jvm: true,
        },
        AppProfile {
            // In-memory OLTP: very short transactions, extremely
            // cache/TLB-sensitive — the paper's one KVM loser at scale.
            name: "silo",
            service_ns: 28_000,
            jitter_ns: 12_000,
            mem_milli: 900,
            calls: &[
                (SysNo::FutexWake, 3, 1),
                (SysNo::SchedYield, 0, 0),
                (SysNo::SchedYield, 0, 0),
            ],
            kernel_ns: 5000,
            needs_disk: false,
            jvm: false,
        },
        AppProfile {
            // Disk-based OLTP: every transaction logs and syncs — the
            // virtio-heavy app that suffers most from KVM in isolation.
            name: "shore",
            service_ns: 250_000,
            jitter_ns: 120_000,
            mem_milli: 100,
            calls: &[
                (SysNo::Pwrite, 0, 32_000),
                (SysNo::Fdatasync, 0, 0),
                (SysNo::Pread, 6, 8_000),
            ],
            kernel_ns: 60000,
            needs_disk: true,
            jvm: false,
        },
    ]
}

/// The apps evaluated in the 64-node experiment (no shore — no SSDs on
/// the cluster nodes; no specjbb — JVM failures, as in the paper).
pub fn cluster_suite() -> Vec<AppProfile> {
    suite()
        .into_iter()
        .filter(|a| !a.needs_disk && !a.jvm)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_matches_table4() {
        let s = suite();
        assert_eq!(s.len(), 8);
        let names: Vec<&str> = s.iter().map(|a| a.name).collect();
        for expect in [
            "xapian", "masstree", "moses", "sphinx", "img-dnn", "specjbb", "silo", "shore",
        ] {
            assert!(names.contains(&expect), "missing {expect}");
        }
    }

    #[test]
    fn cluster_suite_drops_shore_and_specjbb() {
        let s = cluster_suite();
        assert_eq!(s.len(), 6);
        assert!(s.iter().all(|a| a.name != "shore" && a.name != "specjbb"));
    }

    #[test]
    fn arrival_rate_scales_with_workers_and_util() {
        let app = &suite()[0];
        let full = app.arrival_rate(16, 100);
        let spare = app.arrival_rate(16, 75);
        let small = app.arrival_rate(8, 75);
        assert!(spare < full);
        assert!(
            (small * 2.0 - spare).abs() < 1e-12,
            "halving workers halves the rate"
        );
        assert!(small < spare);
    }

    #[test]
    fn silo_is_most_memory_sensitive() {
        let s = suite();
        let silo = s.iter().find(|a| a.name == "silo").unwrap();
        for a in &s {
            assert!(silo.mem_milli >= a.mem_milli, "{} beats silo", a.name);
        }
    }
}
