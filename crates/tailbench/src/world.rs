//! The tailbench world: the kernel plus application request queues.

use std::collections::VecDeque;

use ksa_desim::Ns;
use ksa_kernel::world::{HasKernel, KernelWorld};
use ksa_kernel::Attribution;

/// One completed request's latency decomposition: queueing before a
/// server picked it up, then the decomposed service interval. The
/// invariant `queue_ns + service.total == sojourn` holds exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestAttribution {
    /// Arrival → dequeue (no server was free).
    pub queue_ns: Ns,
    /// Dequeue → completion, decomposed into latency components.
    pub service: Attribution,
}

impl RequestAttribution {
    /// The request's full sojourn time.
    pub fn sojourn_ns(&self) -> Ns {
        self.queue_ns + self.service.total
    }
}

/// One in-flight request.
#[derive(Debug, Clone, Copy)]
pub struct Request {
    /// Arrival (enqueue) time.
    pub arrival: Ns,
    /// Issuing batch (cluster mode) or 0.
    pub batch: u64,
}

/// Per-application queue state shared between client and servers.
#[derive(Debug, Default)]
pub struct AppQueue {
    /// Pending requests (FIFO).
    pub pending: VecDeque<Request>,
    /// Requests completed so far.
    pub completed: u64,
    /// Completion count at which the waiting client is signalled
    /// (cluster batch mode); `u64::MAX` when unused.
    pub batch_target: u64,
}

impl AppQueue {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self {
            pending: VecDeque::new(),
            completed: 0,
            batch_target: u64::MAX,
        }
    }
}

/// World for tailbench runs: kernel instances plus app queues.
#[derive(Default)]
pub struct TbWorld {
    /// The kernel.
    pub kernel: KernelWorld,
    /// One queue per application (index = app id).
    pub queues: Vec<AppQueue>,
    /// Per-request latency decompositions, in completion order; the
    /// harness drains this after the run.
    pub request_attrib: Vec<RequestAttribution>,
    /// Client send attempts dropped by the lossy link and retried.
    pub client_retries: u64,
    /// Requests abandoned after exhausting the client's retry budget.
    pub client_gave_up: u64,
}

impl TbWorld {
    /// Creates an empty world.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a queue; returns its app id.
    pub fn add_queue(&mut self) -> usize {
        self.queues.push(AppQueue::new());
        self.queues.len() - 1
    }
}

impl HasKernel for TbWorld {
    fn kernel(&self) -> &KernelWorld {
        &self.kernel
    }
    fn kernel_mut(&mut self) -> &mut KernelWorld {
        &mut self.kernel
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queues_register_sequentially() {
        let mut w = TbWorld::new();
        assert_eq!(w.add_queue(), 0);
        assert_eq!(w.add_queue(), 1);
        assert_eq!(w.queues.len(), 2);
        assert_eq!(w.queues[0].batch_target, u64::MAX);
    }
}
