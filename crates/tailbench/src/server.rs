//! Server workers: pull requests, execute their kernel template plus the
//! service compute, record sojourn times.

use ksa_desim::{CoreId, Effect, LatSnapshot, Ns, Process, QueueId, SimCtx, WakeReason};
use ksa_kernel::coverage::CoverageSet;
use ksa_kernel::dispatch::dispatch_into;
use ksa_kernel::exec::OpRunner;
use ksa_kernel::ops::OpSeq;
use ksa_kernel::{Attribution, SysNo};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::apps::AppProfile;
use crate::world::{RequestAttribution, TbWorld};

/// Record key under which sojourn (request latency) samples are logged.
pub const SOJOURN_KEY: u64 = 0;

enum State {
    Setup,
    Idle,
    Running,
}

/// One server worker pinned to a core of the application's kernel
/// instance.
pub struct ServerWorker {
    app: AppProfile,
    app_id: usize,
    queue: QueueId,
    done_q: QueueId,
    core: CoreId,
    instance: usize,
    slot: usize,
    rng: SmallRng,
    cover: CoverageSet,
    state: State,
    runner: OpRunner,
    runner_live: bool,
    seq_buf: OpSeq,
    sub_buf: OpSeq,
    arrival: u64,
    queue_ns: Ns,
    lat_before: LatSnapshot,
    lat_after: LatSnapshot,
    vm_exit: Ns,
}

impl ServerWorker {
    /// Creates a worker.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        app: AppProfile,
        app_id: usize,
        queue: QueueId,
        done_q: QueueId,
        core: CoreId,
        instance: usize,
        slot: usize,
        seed: u64,
    ) -> Self {
        Self {
            app,
            app_id,
            queue,
            done_q,
            core,
            instance,
            slot,
            rng: SmallRng::seed_from_u64(seed),
            cover: CoverageSet::new(),
            state: State::Setup,
            runner: OpRunner::empty(),
            runner_live: false,
            seq_buf: OpSeq::new(),
            sub_buf: OpSeq::new(),
            arrival: 0,
            queue_ns: 0,
            lat_before: LatSnapshot::default(),
            lat_after: LatSnapshot::default(),
            vm_exit: 0,
        }
    }

    /// Builds the warm-up sequence: open a data file, prime its cache,
    /// and establish the loopback connection through the simulated net
    /// stack. Resulting fd layout: 0 = data file, 1 = listening socket,
    /// 2 = client socket, 3 = accepted (server-side) connection.
    fn build_setup(&mut self, ctx: &mut SimCtx<'_, TbWorld>) {
        let (world, faults) = ctx.world_and_faults();
        let inst = &mut world.kernel.instances[self.instance];
        let port = self.slot as u64;
        self.seq_buf.reset();
        for (no, a0, a1) in [
            (SysNo::Open, self.slot as u64, 1),
            (SysNo::Socket, 1, 0),
            (SysNo::Bind, 1, port),
            (SysNo::Listen, 1, 8),
            (SysNo::Socket, 1, 0),
            (SysNo::Connect, 2, port),
            (SysNo::Accept, 1, 0),
            (SysNo::Pwrite, 0, 32_000),
            (SysNo::Pwrite, 0, 32_000),
            (SysNo::Pread, 0, 32_000),
        ] {
            dispatch_into(
                inst,
                self.slot,
                no,
                &[a0, a1],
                &mut self.rng,
                &mut self.cover,
                faults,
                &mut self.sub_buf,
            );
            self.seq_buf.ops.extend_from_slice(&self.sub_buf.ops);
        }
        self.runner.relower(&self.seq_buf, inst, self.core);
        self.runner_live = true;
    }

    /// Builds one request's full execution: loopback send + socket
    /// receive through the simulated net stack, the app's kernel-call
    /// template, the (virtualization-sensitive) service compute, and the
    /// socket reply.
    fn build_request(&mut self, ctx: &mut SimCtx<'_, TbWorld>) {
        let (world, faults) = ctx.world_and_faults();
        let inst = &mut world.kernel.instances[self.instance];
        self.seq_buf.reset();

        // Client half of the loopback: push the request payload through
        // the simulated stack (skb alloc, demux, NIC doorbell) into the
        // server connection's receive buffer, then drain it server-side.
        dispatch_into(
            inst,
            self.slot,
            SysNo::Sendto,
            &[2, 768, 0],
            &mut self.rng,
            &mut self.cover,
            faults,
            &mut self.sub_buf,
        );
        self.seq_buf.ops.extend_from_slice(&self.sub_buf.ops);
        dispatch_into(
            inst,
            self.slot,
            SysNo::Recvfrom,
            &[3, 768],
            &mut self.rng,
            &mut self.cover,
            faults,
            &mut self.sub_buf,
        );
        self.seq_buf.ops.extend_from_slice(&self.sub_buf.ops);

        // The app's kernel footprint.
        for &(no, a0, a1) in self.app.calls {
            dispatch_into(
                inst,
                self.slot,
                no,
                &[a0, a1],
                &mut self.rng,
                &mut self.cover,
                faults,
                &mut self.sub_buf,
            );
            self.seq_buf.ops.extend_from_slice(&self.sub_buf.ops);
        }

        // Userspace service compute, split into the memory-bound part
        // (pays nested paging in VMs) and the rest.
        let total = self.app.service_ns
            + if self.app.jitter_ns > 0 {
                self.rng.gen_range(0..self.app.jitter_ns)
            } else {
                0
            };
        let mem = total * self.app.mem_milli / 1000;
        self.seq_buf.mem(mem);
        self.seq_buf
            .push(ksa_kernel::ops::KOp::UserCpu(total - mem));

        // Reply: server send (peer-routed to the client socket), then
        // the client drains it so buffers stay bounded across requests.
        dispatch_into(
            inst,
            self.slot,
            SysNo::Sendto,
            &[3, 256, 0],
            &mut self.rng,
            &mut self.cover,
            faults,
            &mut self.sub_buf,
        );
        self.seq_buf.ops.extend_from_slice(&self.sub_buf.ops);
        dispatch_into(
            inst,
            self.slot,
            SysNo::Recvfrom,
            &[2, 256],
            &mut self.rng,
            &mut self.cover,
            faults,
            &mut self.sub_buf,
        );
        self.seq_buf.ops.extend_from_slice(&self.sub_buf.ops);

        debug_assert!(self.seq_buf.locks_balanced());
        self.runner.relower(&self.seq_buf, inst, self.core);
        self.runner_live = true;
    }

    /// Finishes the in-flight request and looks for the next one.
    fn complete_and_next(&mut self, ctx: &mut SimCtx<'_, TbWorld>) -> Effect {
        let sojourn = ctx.now() - self.arrival;
        ctx.record(SOJOURN_KEY, sojourn);
        ctx.lat_snapshot_into(&mut self.lat_after);
        let service = Attribution::from_delta(
            &self.lat_after.comps.since(&self.lat_before.comps),
            self.vm_exit,
        );
        // Decomposition must tile the sojourn exactly: time in queue plus
        // every attributed service nanosecond.
        debug_assert_eq!(self.queue_ns + service.total, sojourn);
        if ctx.trace_enabled() {
            ctx.trace_mark(ksa_desim::TraceEventKind::Mark {
                label: "request_done",
                a: sojourn,
                b: self.queue_ns,
            });
        }
        ctx.world.request_attrib.push(RequestAttribution {
            queue_ns: self.queue_ns,
            service,
        });
        let now = ctx.now();
        let k = &mut ctx.world.kernel;
        if k.metrics.enabled() {
            k.metrics
                .observe_request(self.app_id, sojourn, self.queue_ns);
            if k.metrics.due(now) {
                k.metrics.sample(now, &k.instances);
            }
        }
        let q = &mut ctx.world.queues[self.app_id];
        q.completed += 1;
        if q.completed == q.batch_target {
            ctx.signal(self.done_q, 1);
        }
        self.next(ctx)
    }

    /// Pops a request or sleeps on the queue.
    fn next(&mut self, ctx: &mut SimCtx<'_, TbWorld>) -> Effect {
        match ctx.world.queues[self.app_id].pending.pop_front() {
            Some(req) => {
                self.arrival = req.arrival;
                self.queue_ns = ctx.now() - req.arrival;
                ctx.lat_snapshot_into(&mut self.lat_before);
                self.build_request(ctx);
                if ctx.trace_enabled() {
                    self.runner.trace_exits(ctx);
                }
                self.state = State::Running;
                self.step(ctx)
            }
            None => {
                self.state = State::Idle;
                Effect::Wait(self.queue)
            }
        }
    }

    fn step(&mut self, ctx: &mut SimCtx<'_, TbWorld>) -> Effect {
        if self.runner_live {
            if let Some(e) = self.runner.step(ctx) {
                return e;
            }
        }
        self.runner_live = false;
        self.vm_exit = self.runner.vm_exit_ns();
        self.complete_and_next(ctx)
    }
}

impl Process<TbWorld> for ServerWorker {
    fn resume(&mut self, ctx: &mut SimCtx<'_, TbWorld>, _wake: WakeReason) -> Effect {
        match self.state {
            State::Setup => {
                if !self.runner_live {
                    self.build_setup(ctx);
                }
                if let Some(e) = self.runner.step(ctx) {
                    return e;
                }
                self.runner_live = false;
                self.next(ctx)
            }
            State::Idle => self.next(ctx),
            State::Running => self.step(ctx),
        }
    }

    fn is_daemon(&self) -> bool {
        // The client decides when the run ends.
        true
    }

    fn label(&self) -> &str {
        self.app.name
    }
}
