//! # ksa-tailbench — simulated latency-sensitive applications
//!
//! The paper evaluates eight tailbench applications in client/server mode
//! over a loopback socket, measuring 99th percentile request latency
//! (Figure 3) and, at 64-node scale, barrier-synchronized batch runtimes
//! (Figure 4). This crate reproduces that setup on the simulated kernel:
//!
//! * [`apps`] defines one profile per application — service-time
//!   distribution, memory sensitivity (how much of its compute is
//!   EPT-sensitive under virtualization), and the **kernel-call
//!   template** each request executes through the real simulated
//!   dispatcher (reads, writes, fsyncs, mmaps — the app's syscall
//!   footprint).
//! * [`server`] and [`client`] are engine processes: an open-loop client
//!   generates Poisson arrivals at 75% utilization; server workers pull
//!   requests from the socket queue, run the template plus the service
//!   compute, and record sojourn times.
//! * [`single_node`] assembles Figure 3's configurations: 4 KVM VMs
//!   (16 cores each — one runs the app, three run a 48-core varbench
//!   noise corpus) versus 4 Docker containers on one shared kernel.

pub mod apps;
pub mod churn;
pub mod client;
pub mod server;
pub mod single_node;
pub mod world;

pub use apps::{suite, AppProfile};
pub use churn::{run_churn, run_churn_points, ChurnConfig, ChurnResult};
pub use client::RetryPolicy;
pub use single_node::{
    run_points, run_single_node, run_single_node_retry, SingleNodeConfig, TailResult,
};
pub use world::{Request, RequestAttribution, TbWorld};
