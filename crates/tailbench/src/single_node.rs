//! Single-node tail-latency experiments (Figure 3) and the node runner
//! shared with the cluster experiments (Figure 4).
//!
//! The paper's setup: a 64-thread machine divided four ways — under KVM,
//! 4 VMs × 16 cores (one runs the tailbench app, three run a 48-core
//! varbench corpus as noise); under Docker, the same split as 4
//! containers on one shared kernel. Clients drive ~75% utilization.

use std::sync::Arc;

use ksa_desim::{Engine, EngineParams, Ns, TraceConfig, TraceLog};
use ksa_envsim::{build_env_with, EnvKind, EnvSpec, Machine};
use ksa_kernel::prog::Corpus;
use ksa_kernel::{AttributionTable, SpecMask};
use ksa_stats::Samples;
use ksa_varbench::worker::{site_bases, CorpusWorker};

use crate::apps::AppProfile;
use crate::client::{Client, ClientMode, RetryPolicy, ITER_KEY_BASE};
use crate::server::{ServerWorker, SOJOURN_KEY};
use crate::world::{RequestAttribution, TbWorld};

/// Configuration of one single-node run.
#[derive(Debug, Clone, Copy)]
pub struct SingleNodeConfig {
    /// The machine being divided.
    pub machine: Machine,
    /// Number of equal divisions (VMs or containers); the app gets one.
    pub groups: usize,
    /// KVM VMs (true) or Docker containers (false).
    pub virt: bool,
    /// Run the varbench noise corpus on the other groups.
    pub noise: bool,
    /// Requests the client issues (Figure 3 mode).
    pub requests: u64,
    /// Leading samples discarded as warm-up.
    pub warmup: usize,
    /// Target utilization percentage.
    pub util_pct: u64,
    /// Seed.
    pub seed: u64,
    /// Record per-core trace rings during the run (observationally
    /// neutral; attribution is always collected).
    pub trace: bool,
    /// Collect telemetry (engine self-profile plus kernel gauges and
    /// per-tenant request series). Observationally neutral like `trace`.
    pub metrics: bool,
    /// Specialization mask applied to every kernel instance. `None`
    /// (and `Some(SpecMask::full())`) build the unspecialized kernel
    /// bit-identically.
    pub spec: Option<SpecMask>,
}

impl SingleNodeConfig {
    /// The paper's Figure 3 configuration.
    pub fn paper(virt: bool, noise: bool, seed: u64) -> Self {
        Self {
            machine: Machine {
                cores: 64,
                mem_mib: 64 * 1024,
            },
            groups: 4,
            virt,
            noise,
            requests: 2_000,
            warmup: 200,
            util_pct: 75,
            seed,
            trace: false,
            metrics: false,
            spec: None,
        }
    }

    /// A scaled-down configuration for tests.
    pub fn quick(virt: bool, noise: bool, seed: u64) -> Self {
        Self {
            machine: Machine {
                cores: 16,
                mem_mib: 8 * 1024,
            },
            groups: 4,
            virt,
            noise,
            requests: 300,
            warmup: 30,
            util_pct: 75,
            seed,
            trace: false,
            metrics: false,
            spec: None,
        }
    }
}

/// Result of one run.
#[derive(Debug, Clone)]
pub struct TailResult {
    /// Application name.
    pub app: String,
    /// Request sojourn times (warm-up removed).
    pub sojourns: Samples,
    /// p99 request latency.
    pub p99: u64,
    /// Per-batch durations (cluster mode; empty otherwise).
    pub batch_durations: Vec<Ns>,
    /// Final virtual time.
    pub sim_ns: Ns,
    /// Engine events processed — the simulated-work unit the bench
    /// suite converts to events/second throughput.
    pub events: u64,
    /// Per-request latency decompositions (all requests, completion
    /// order; `queue_ns + service.total` equals the sojourn exactly).
    pub request_attrib: Vec<RequestAttribution>,
    /// Syscall attribution from the noise co-runners (empty when
    /// `noise` is off).
    pub noise_attrib: AttributionTable,
    /// Client sends dropped by the lossy link and retried (0 on a
    /// perfect link).
    pub client_retries: u64,
    /// Requests abandoned after the client's retry budget ran out.
    pub client_gave_up: u64,
    /// Engine locks allocated across all kernel instances at build time
    /// — the static footprint specialization shrinks.
    pub locks_allocated: u32,
    /// Kernel daemons spawned across all instances.
    pub daemons_spawned: u32,
    /// The recorded trace (empty rings unless tracing was enabled).
    pub trace: TraceLog,
    /// The merged telemetry registry (inert unless
    /// [`SingleNodeConfig::metrics`]).
    pub metrics: ksa_telemetry::Registry,
}

/// Runs one app under `cfg` (Figure 3 point). `noise_corpus` is only
/// used when `cfg.noise` is set.
pub fn run_single_node(
    app: &AppProfile,
    cfg: &SingleNodeConfig,
    noise_corpus: &Corpus,
) -> TailResult {
    run_node(app, cfg, &SharedNoise::new(noise_corpus), None, None)
}

/// The noise corpus prepared for sharing across sweep points: the
/// co-runner workers' owned handle plus the precomputed per-site record
/// keys. Sweeps build this once so each point clones an `Arc`, not the
/// corpus.
struct SharedNoise {
    corpus: Arc<Corpus>,
    bases: Arc<Vec<u64>>,
}

impl SharedNoise {
    fn new(corpus: &Corpus) -> Self {
        Self {
            corpus: Arc::new(corpus.clone()),
            bases: Arc::new(site_bases(corpus)),
        }
    }
}

/// Runs one app under `cfg` with the client sending over a lossy link
/// under `policy` — the fabric's timeout/retry/backoff discipline at
/// request granularity, so partition-like loss shows up in p99.
pub fn run_single_node_retry(
    app: &AppProfile,
    cfg: &SingleNodeConfig,
    noise_corpus: &Corpus,
    policy: RetryPolicy,
) -> TailResult {
    run_node(
        app,
        cfg,
        &SharedNoise::new(noise_corpus),
        None,
        Some(policy),
    )
}

/// Runs a whole sweep of independent `(app, config)` points concurrently
/// on the deterministic work-stealing pool (`jobs` workers; 0 = auto,
/// 1 = sequential), returning results in input order. This is the
/// engine behind the Figure 3 noise grid (apps × {KVM, Docker} ×
/// {isolated, noisy} × repetition seeds) and the calibration sweep: each
/// point is one single-threaded engine run, so any worker count yields
/// results bit-identical to the sequential sweep. A panicking point
/// (e.g. a stalled node) propagates after every sibling point finished,
/// so one bad configuration cannot silently truncate the grid.
pub fn run_points(
    points: &[(AppProfile, SingleNodeConfig)],
    noise_corpus: &Corpus,
    jobs: usize,
) -> Vec<TailResult> {
    let noise = SharedNoise::new(noise_corpus);
    let noise = &noise;
    let tasks: Vec<_> = points
        .iter()
        .map(|(app, cfg)| move || run_node(app, cfg, noise, None, None))
        .collect();
    let mut panic_payload = None;
    let results: Vec<Option<TailResult>> = ksa_desim::pool::run_tasks(jobs, tasks)
        .into_iter()
        .map(|r| match r {
            Ok(res) => Some(res),
            Err(payload) => {
                panic_payload.get_or_insert(payload);
                None
            }
        })
        .collect();
    if let Some(payload) = panic_payload {
        std::panic::resume_unwind(payload);
    }
    results.into_iter().map(|r| r.unwrap()).collect()
}

/// Runs one cluster node: `batches` rounds of `per_batch` requests with a
/// local drain between rounds (Figure 4's node-local component).
pub fn run_node_batched(
    app: &AppProfile,
    cfg: &SingleNodeConfig,
    noise_corpus: &Corpus,
    batches: u64,
    per_batch: u64,
) -> TailResult {
    run_node(
        app,
        cfg,
        &SharedNoise::new(noise_corpus),
        Some((batches, per_batch)),
        None,
    )
}

fn run_node(
    app: &AppProfile,
    cfg: &SingleNodeConfig,
    noise: &SharedNoise,
    batched: Option<(u64, u64)>,
    retry: Option<RetryPolicy>,
) -> TailResult {
    assert!(cfg.machine.cores.is_multiple_of(cfg.groups));
    let per_group = cfg.machine.cores / cfg.groups;

    let mut engine: Engine<TbWorld> =
        Engine::new(TbWorld::new(), EngineParams::default(), cfg.seed);
    if cfg.metrics {
        use ksa_kernel::world::HasKernel;
        use ksa_telemetry::TelemetryConfig;
        engine.set_telemetry(TelemetryConfig::enabled());
        engine.world_mut().kernel_mut().metrics =
            ksa_kernel::KernelTelemetry::new(TelemetryConfig::enabled());
    }
    let kind = if cfg.virt {
        EnvKind::Vm(cfg.groups)
    } else {
        EnvKind::Container(cfg.groups)
    };
    let spec = EnvSpec::new(cfg.machine, kind);
    let built = build_env_with(&mut engine, &spec, cfg.seed, cfg.spec);
    let (locks_allocated, daemons_spawned) = {
        use ksa_kernel::world::HasKernel;
        let k = engine.world().kernel();
        (
            k.instances.iter().map(|i| i.locks_allocated).sum(),
            k.instances.iter().map(|i| i.daemons_spawned).sum(),
        )
    };
    if cfg.trace {
        engine.set_trace(TraceConfig::enabled());
    }

    // The app owns the first group of cores (instance 0 under KVM; the
    // first container's share under Docker).
    let app_cores = &built.cores[..per_group];
    let app_id = engine.world_mut().add_queue();
    let req_q = engine.add_queue();
    let done_q = engine.add_queue();

    for (i, &core) in app_cores.iter().enumerate() {
        let (instance, slot) = {
            use ksa_kernel::world::HasKernel;
            engine.world().kernel().locate(core)
        };
        let worker = ServerWorker::new(
            app.clone(),
            app_id,
            req_q,
            done_q,
            core,
            instance,
            slot,
            cfg.seed ^ ((i as u64 + 1) * 0x9e37),
        );
        engine.spawn(core, Box::new(worker), 0);
    }

    let rate = app.arrival_rate(per_group, cfg.util_pct);
    let mode = match batched {
        None => ClientMode::OpenLoop {
            total: cfg.requests,
        },
        Some((batches, per_batch)) => ClientMode::Batched { batches, per_batch },
    };
    // Client runs on the app's first core; it mostly sleeps. Started
    // slightly late so server setup completes first.
    let mut client = Client::new(app_id, req_q, done_q, rate, mode, cfg.seed ^ 0xc11e);
    if let Some(policy) = retry {
        client = client.with_retry(policy);
    }
    engine.spawn(app_cores[0], Box::new(client), 50_000);

    // Noise co-runners on the remaining cores.
    if cfg.noise && built.cores.len() > per_group {
        let noise_cores = &built.cores[per_group..];

        // The noise corpus barrier-synchronizes program starts across
        // all noise cores, exactly like the paper's varbench co-runner.
        let barrier = engine.add_barrier(noise_cores.len() as u32);
        for (i, &core) in noise_cores.iter().enumerate() {
            let (instance, slot) = {
                use ksa_kernel::world::HasKernel;
                engine.world().kernel().locate(core)
            };
            let w = CorpusWorker::new(
                Arc::clone(&noise.corpus),
                Arc::clone(&noise.bases),
                usize::MAX,
                Some(barrier),
                core,
                instance,
                slot,
                cfg.seed ^ (0x517e + i as u64),
            )
            .as_daemon();
            engine.spawn(core, Box::new(w), 0);
        }
    }

    let res = engine
        .run()
        .unwrap_or_else(|e| panic!("tailbench node run stalled: {e}"));

    let mut sojourns = Vec::new();
    let mut batch_durations = Vec::new();
    for rec in &res.records {
        if rec.key == SOJOURN_KEY {
            sojourns.push(rec.value);
        } else if rec.key >= ITER_KEY_BASE {
            batch_durations.push(rec.value);
        }
    }
    let kept: Vec<u64> = sojourns
        .iter()
        .copied()
        .skip(cfg.warmup.min(sojourns.len() / 2))
        .collect();
    let mut samples = Samples::from_values(kept);
    let p99 = samples.p99().unwrap_or(0);
    let trace = engine.take_trace();
    let now = engine.now();
    let kernel_metrics = {
        let kw = &mut engine.world_mut().kernel;
        kw.metrics.finish(now, &kw.instances)
    };
    let mut metrics = engine.take_telemetry();
    if metrics.enabled() {
        for (label, acq, cont, total_wait, _max, _hist) in engine.all_lock_wait_stats() {
            let labels = [("label", label.to_string())];
            let a = metrics.counter("lock_acquisitions", &labels);
            let c = metrics.counter("lock_contended", &labels);
            let w = metrics.counter("lock_wait_ns", &labels);
            metrics.add(a, acq);
            metrics.add(c, cont);
            metrics.add(w, total_wait);
        }
    }
    metrics.absorb(&kernel_metrics, &[]);
    let request_attrib = std::mem::take(&mut engine.world_mut().request_attrib);
    let noise_attrib = std::mem::take(&mut engine.world_mut().kernel.attrib);
    let client_retries = engine.world().client_retries;
    let client_gave_up = engine.world().client_gave_up;
    TailResult {
        app: app.name.to_string(),
        sojourns: samples,
        p99,
        batch_durations,
        sim_ns: res.clock,
        events: res.events,
        request_attrib,
        noise_attrib,
        client_retries,
        client_gave_up,
        locks_allocated,
        daemons_spawned,
        trace,
        metrics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::suite;
    use ksa_kernel::{Arg, Call, Program, SysNo};

    fn noise_corpus() -> Corpus {
        Corpus {
            programs: vec![
                Program {
                    calls: vec![
                        Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                        Call::new(SysNo::Write, vec![Arg::Ref(0), Arg::Const(16_000)]),
                        Call::new(SysNo::Fsync, vec![Arg::Ref(0)]),
                    ],
                },
                Program {
                    calls: vec![
                        Call::new(SysNo::Mmap, vec![Arg::Const(64), Arg::Const(1)]),
                        Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
                        Call::new(SysNo::Clone, vec![Arg::Const(0)]),
                        Call::new(SysNo::Wait4, vec![Arg::Ref(2)]),
                    ],
                },
            ],
        }
    }

    #[test]
    fn isolated_run_completes_and_records() {
        let app = &suite()[1]; // masstree: short requests
        let cfg = SingleNodeConfig::quick(false, false, 3);
        let res = run_single_node(app, &cfg, &noise_corpus());
        assert_eq!(
            res.sojourns.len() as u64,
            cfg.requests - cfg.warmup as u64,
            "all post-warmup requests recorded"
        );
        assert!(res.p99 > 0);
        assert!(res.sim_ns > 0);
    }

    #[test]
    fn noise_increases_docker_tail() {
        let app = &suite()[0]; // xapian: kernel-intensive
        let quiet = run_single_node(
            app,
            &SingleNodeConfig::quick(false, false, 5),
            &noise_corpus(),
        );
        let noisy = run_single_node(
            app,
            &SingleNodeConfig::quick(false, true, 5),
            &noise_corpus(),
        );
        assert!(
            noisy.p99 > quiet.p99,
            "noise must raise the Docker tail: {} vs {}",
            noisy.p99,
            quiet.p99
        );
    }

    #[test]
    fn kvm_bounds_noise_better_than_docker() {
        let app = &suite()[0]; // xapian
        let mk = |virt, noise| {
            run_single_node(
                app,
                &SingleNodeConfig::quick(virt, noise, 11),
                &noise_corpus(),
            )
        };
        let docker_quiet = mk(false, false);
        let docker_noisy = mk(false, true);
        let kvm_quiet = mk(true, false);
        let kvm_noisy = mk(true, true);
        let docker_blowup = docker_noisy.p99 as f64 / docker_quiet.p99.max(1) as f64;
        let kvm_blowup = kvm_noisy.p99 as f64 / kvm_quiet.p99.max(1) as f64;
        assert!(
            kvm_blowup < docker_blowup,
            "isolation must bound the blowup: kvm {kvm_blowup:.2} vs docker {docker_blowup:.2}"
        );
    }

    #[test]
    fn batched_mode_reports_durations() {
        let app = &suite()[1];
        let cfg = SingleNodeConfig::quick(false, false, 9);
        let res = run_node_batched(app, &cfg, &noise_corpus(), 5, 40);
        assert_eq!(res.batch_durations.len(), 5);
        assert!(res.batch_durations.iter().all(|&d| d > 0));
    }

    #[test]
    fn request_attribution_decomposes_every_request() {
        let app = &suite()[1];
        let cfg = SingleNodeConfig::quick(true, false, 13);
        let res = run_single_node(app, &cfg, &noise_corpus());
        assert_eq!(res.request_attrib.len() as u64, cfg.requests);
        for r in &res.request_attrib {
            assert!(r.service.is_exact(), "components must sum to total");
        }
        // Under KVM the requests pay virtualization exits.
        let vm_exit: u64 = res.request_attrib.iter().map(|r| r.service.vm_exit).sum();
        assert!(vm_exit > 0, "VM requests must show exit overhead");
        // Noise off ⇒ no corpus syscalls attributed.
        assert_eq!(res.noise_attrib.calls(), 0);
    }

    #[test]
    fn noise_attribution_and_tracing_are_neutral() {
        let app = &suite()[0];
        let cfg = SingleNodeConfig::quick(false, true, 17);
        let plain = run_single_node(app, &cfg, &noise_corpus());
        let traced = run_single_node(
            app,
            &SingleNodeConfig { trace: true, ..cfg },
            &noise_corpus(),
        );
        assert_eq!(plain.p99, traced.p99, "tracing must not move the tail");
        assert_eq!(plain.sim_ns, traced.sim_ns);
        assert_eq!(plain.trace.total_events(), 0);
        assert!(traced.trace.total_events() > 0);
        // The noise co-runners' syscalls are attributed.
        assert!(plain.noise_attrib.calls() > 0);
        assert!(plain.noise_attrib.grand_total().is_exact());
    }

    #[test]
    fn lossless_retry_policy_is_bit_identical_to_no_policy() {
        let app = &suite()[1];
        let cfg = SingleNodeConfig::quick(false, false, 23);
        let plain = run_single_node(app, &cfg, &noise_corpus());
        let wrapped = run_single_node_retry(app, &cfg, &noise_corpus(), RetryPolicy::lossless());
        assert_eq!(plain.p99, wrapped.p99);
        assert_eq!(plain.sim_ns, wrapped.sim_ns);
        assert_eq!(plain.sojourns.raw(), wrapped.sojourns.raw());
        assert_eq!(wrapped.client_retries, 0);
        assert_eq!(wrapped.client_gave_up, 0);
    }

    #[test]
    fn lossy_link_retries_raise_the_tail_deterministically() {
        let app = &suite()[1];
        let cfg = SingleNodeConfig::quick(false, false, 27);
        let clean = run_single_node(app, &cfg, &noise_corpus());
        let policy = RetryPolicy::lossy(300, 91);
        let lossy = run_single_node_retry(app, &cfg, &noise_corpus(), policy);
        assert!(
            lossy.client_retries > 0,
            "a 30% drop rate must force retransmits"
        );
        assert!(
            lossy.p99 > clean.p99,
            "retry backoff must land in the tail: {} vs {}",
            lossy.p99,
            clean.p99
        );
        // Accounting: every issued request either completed (has a
        // sojourn sample pre-warmup) or was abandoned.
        assert_eq!(
            lossy.sojourns.len() as u64 + cfg.warmup as u64 + lossy.client_gave_up,
            cfg.requests,
            "issued = measured + warmup + gave_up"
        );
        // Bit-identical replay, counters included.
        let again = run_single_node_retry(app, &cfg, &noise_corpus(), policy);
        assert_eq!(lossy.p99, again.p99);
        assert_eq!(lossy.sim_ns, again.sim_ns);
        assert_eq!(lossy.client_retries, again.client_retries);
        assert_eq!(lossy.client_gave_up, again.client_gave_up);
    }

    #[test]
    fn metrics_are_neutral_and_count_every_request() {
        let app = &suite()[1];
        let cfg = SingleNodeConfig::quick(false, true, 19);
        let off = run_single_node(app, &cfg, &noise_corpus());
        let on = run_single_node(
            app,
            &SingleNodeConfig {
                metrics: true,
                ..cfg
            },
            &noise_corpus(),
        );
        assert_eq!(off.p99, on.p99, "telemetry must not move the tail");
        assert_eq!(off.sim_ns, on.sim_ns);
        assert_eq!(off.sojourns.raw(), on.sojourns.raw());
        assert!(!off.metrics.enabled());
        assert!(on.metrics.enabled());
        // Per-tenant request series cover every request the server
        // completed (warmup included: telemetry sees the raw stream).
        assert_eq!(on.metrics.total("tenant_requests"), cfg.requests);
        // The noise co-runners' syscalls land in the category counters,
        // mirroring the noise attribution table exactly.
        assert_eq!(
            on.metrics.total("syscall_ns"),
            on.noise_attrib.grand_total().total
        );
        assert!(on.metrics.samples_taken >= 1);
    }

    #[test]
    fn runs_are_deterministic() {
        let app = &suite()[6]; // silo
        let cfg = SingleNodeConfig::quick(true, false, 21);
        let a = run_single_node(app, &cfg, &noise_corpus());
        let b = run_single_node(app, &cfg, &noise_corpus());
        assert_eq!(a.p99, b.p99);
        assert_eq!(a.sim_ns, b.sim_ns);
    }

    #[test]
    fn parallel_sweep_matches_sequential_point_by_point() {
        let apps = suite();
        let mut points: Vec<(crate::apps::AppProfile, SingleNodeConfig)> = Vec::new();
        for ai in [1usize, 6] {
            for (virt, noise) in [(true, false), (false, true)] {
                points.push((
                    apps[ai].clone(),
                    SingleNodeConfig::quick(virt, noise, 31 + ai as u64),
                ));
            }
        }
        let corpus = noise_corpus();
        let seq = run_points(&points, &corpus, 1);
        let par = run_points(&points, &corpus, 4);
        assert_eq!(seq.len(), points.len());
        for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
            assert_eq!(a.app, points[i].0.name, "slot {i} out of order");
            assert_eq!(a.app, b.app, "slot {i}");
            assert_eq!(a.p99, b.p99, "slot {i}: tails diverged");
            assert_eq!(a.sim_ns, b.sim_ns, "slot {i}: clocks diverged");
            assert_eq!(
                a.sojourns.raw(),
                b.sojourns.raw(),
                "slot {i}: samples diverged"
            );
        }
    }
}
