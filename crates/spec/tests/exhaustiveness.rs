//! Exhaustiveness gates for the specialization tables: a future eighth
//! category (or a new syscall, daemon or lock group) cannot silently
//! dodge specialization — it must show up in the footprint registry and
//! the prefix map before these tests pass again.

use ksa_spec::block_category;

use ksa_kernel::spec::{SpecMask, ALL_DAEMONS, FOOTPRINT, GATED_LOCK_GROUPS, INFRA_LOCK_GROUPS};
use ksa_kernel::{Category, SysNo};

/// Every sysno maps to exactly one *primary* category, and that primary
/// is the head of its (non-empty) category list.
#[test]
fn every_sysno_has_exactly_one_primary_category() {
    for &no in &SysNo::ALL {
        let cats = no.categories();
        assert!(!cats.is_empty(), "{} has no categories", no.name());
        assert_eq!(
            no.primary_category(),
            cats[0],
            "{}: primary is not the head of its category list",
            no.name()
        );
        assert_eq!(
            cats.iter().filter(|&&c| c == no.primary_category()).count(),
            1,
            "{}: primary category listed more than once",
            no.name()
        );
    }
}

/// The footprint registry covers every category, in `Category::ALL`
/// order, and every daemon / gated lock group is owned by at least one
/// category (otherwise specialization could never gate it in, i.e. the
/// full mask would not be full).
#[test]
fn every_category_has_a_registered_footprint() {
    assert_eq!(FOOTPRINT.len(), Category::ALL.len());
    for (i, f) in FOOTPRINT.iter().enumerate() {
        assert_eq!(
            f.cat,
            Category::ALL[i],
            "footprint registry out of order at {i}"
        );
        assert_eq!(f.cat.index(), i, "Category::index disagrees with ALL");
        // Footprint entries must reference known names only.
        for d in f.daemons {
            assert!(ALL_DAEMONS.contains(d), "{}: unknown daemon {d}", f.cat);
        }
        for g in f.lock_groups {
            assert!(
                GATED_LOCK_GROUPS.contains(g),
                "{}: unknown lock group {g}",
                f.cat
            );
        }
    }
    for d in ALL_DAEMONS {
        assert!(
            FOOTPRINT.iter().any(|f| f.daemons.contains(&d)),
            "daemon {d} is owned by no category"
        );
    }
    for g in GATED_LOCK_GROUPS {
        assert!(
            FOOTPRINT.iter().any(|f| f.lock_groups.contains(&g)),
            "lock group {g} is owned by no category"
        );
        assert!(
            !INFRA_LOCK_GROUPS.contains(&g),
            "lock group {g} is both gated and infrastructure"
        );
    }
}

/// Every category's subsystem block prefix resolves back to it, so
/// coverage-driven derivation can reach every subsystem.
#[test]
fn every_category_has_a_block_prefix() {
    let probe = [
        ("sched.ctx", Category::ProcessSched),
        ("mm.alloc.pcp", Category::Memory),
        ("io.submit", Category::FileIo),
        ("fs.path_walk", Category::Filesystem),
        ("ipc.pipe.create", Category::Ipc),
        ("perm.cred.update", Category::Permissions),
        ("net.tx.enqueue", Category::Network),
    ];
    assert_eq!(probe.len(), Category::ALL.len());
    for (name, cat) in probe {
        assert_eq!(block_category(name), Some(cat), "{name}");
        // The err.-tagged twin maps identically.
        assert_eq!(block_category(&format!("err.{name}")), Some(cat));
    }
    // Infrastructure prefixes belong to no single category.
    for name in ["cgroup.charge", "daemon.flusher.commit", "err.spec.enosys"] {
        assert_eq!(block_category(name), None, "{name}");
    }
}

/// The full mask wants every daemon and every lock group; the empty
/// mask wants only infrastructure. (The construction-level twin of the
/// registry checks above.)
#[test]
fn masks_and_registry_agree_at_the_extremes() {
    let full = SpecMask::full();
    let empty = SpecMask::empty();
    for d in ALL_DAEMONS {
        assert!(full.wants_daemon(d));
        assert!(!empty.wants_daemon(d));
    }
    for g in GATED_LOCK_GROUPS {
        assert!(full.wants_group(g));
        assert!(!empty.wants_group(g));
    }
    for g in INFRA_LOCK_GROUPS {
        assert!(full.wants_group(g));
        assert!(empty.wants_group(g));
    }
}
