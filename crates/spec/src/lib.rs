//! # ksa-spec — coverage-derived kernel specialization profiles
//!
//! The third surface-area axis next to hardware partitioning and
//! multi-tenancy: *reachability*. KASR and MultiK shrink a kernel by
//! unloading code a workload never touches; this crate derives the
//! equivalent contract for the simulated kernel — a [`SpecProfile`]
//! holding a syscall allowlist plus the reachable subsystem
//! [`Category`] set — from the same evidence those systems use, a
//! coverage corpus.
//!
//! ## Derivation
//!
//! [`derive_profile`] replays every corpus program through the
//! `ksa-syzgen` [`Sandbox`] and merges the covered blocks. The
//! allowlist is the set of syscalls the corpus issues; the category set
//! is the union of (a) every allowed syscall's static categories and
//! (b) the subsystems the covered block *names* prove were entered
//! (block-name prefixes map onto categories — `fs.*` is filesystem
//! code, `net.*` is the network stack, and so on). Derivation is a pure
//! function of the corpus: the sandbox is seeded deterministically and
//! coverage block names are stable, so equal corpora give equal
//! profiles.
//!
//! ## Serde
//!
//! Profiles serialize to schema-versioned JSON via `ksa-json`, exactly
//! like the v2 corpus format: a missing or foreign `version` key and
//! any unknown syscall/category index are structured [`ksa_json::Error`]s,
//! never panics — a profile written by a build with a different syscall
//! table must not silently gate the wrong calls.
//!
//! What the kernel *does* with a profile (daemon gating, lock-footprint
//! gating, the `ENOSYS` dispatch path) lives in `ksa_kernel::spec`; the
//! dependency direction is kernel ← spec.

use ksa_json::Value;
use ksa_kernel::coverage::{block_name, CoverageSet};
use ksa_kernel::prog::Corpus;
use ksa_kernel::spec::SpecMask;
use ksa_kernel::{Category, SysNo};
use ksa_syzgen::Sandbox;

/// Profile JSON schema version. Version 1 is the first: allowlists are
/// `SysNo` indices and category sets are `Category` indices, both only
/// meaningful for this build's tables.
pub const SPEC_SCHEMA_VERSION: u64 = 1;

/// A per-tenant specialization profile: the name of the workload it was
/// derived for plus the kernel-side mask.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecProfile {
    /// Workload / tenant name (diagnostic; carried through serde).
    pub name: String,
    /// The allowlist + reachable-category mask the kernel consumes.
    pub mask: SpecMask,
}

impl SpecProfile {
    /// The unspecialized profile: everything allowed.
    pub fn full(name: &str) -> Self {
        Self {
            name: name.to_string(),
            mask: SpecMask::full(),
        }
    }

    /// Builds a profile statically from a known syscall set (no corpus
    /// replay): the allowlist is exactly `calls`, categories are their
    /// static union. Used when a workload's syscall surface is known by
    /// construction, e.g. the tailbench app templates.
    pub fn from_syscalls(name: &str, calls: impl IntoIterator<Item = SysNo>) -> Self {
        let mut mask = SpecMask::empty();
        for no in calls {
            mask.insert(no);
        }
        Self {
            name: name.to_string(),
            mask,
        }
    }

    /// Serializes to schema-versioned JSON.
    pub fn to_json(&self) -> String {
        Value::object([
            ("version", Value::UInt(SPEC_SCHEMA_VERSION)),
            ("name", Value::str(self.name.clone())),
            (
                "allowed",
                Value::array(self.mask.allowed().map(|no| Value::UInt(no.index() as u64))),
            ),
            (
                "categories",
                Value::array(
                    self.mask
                        .categories()
                        .map(|c| Value::UInt(c.index() as u64)),
                ),
            ),
        ])
        .render()
    }

    /// Deserializes from JSON. Rejects profiles from other schema
    /// versions, unknown syscall indices and unknown category indices
    /// with structured errors instead of misinterpreting (or panicking
    /// on) a foreign build's tables.
    pub fn from_json(s: &str) -> Result<Self, ksa_json::Error> {
        let v = ksa_json::parse(s)?;
        match v.opt("version") {
            None => {
                return Err(ksa_json::Error::shape(
                    "spec profile has no schema version; regenerate it with this build",
                ));
            }
            Some(ver) => {
                let ver = ver.as_u64()?;
                if ver != SPEC_SCHEMA_VERSION {
                    return Err(ksa_json::Error::shape(format!(
                        "spec profile schema version {ver} unsupported \
                         (this build reads version {SPEC_SCHEMA_VERSION}); \
                         regenerate the profile"
                    )));
                }
            }
        }
        let mut mask = SpecMask::empty();
        for item in v.get("allowed")?.as_array()? {
            mask.insert(SysNo::from_index(item.as_usize()?)?);
        }
        for item in v.get("categories")?.as_array()? {
            mask.insert_cat(category_from_index(item.as_usize()?)?);
        }
        Ok(Self {
            name: v.get("name")?.as_str()?.to_string(),
            mask,
        })
    }
}

/// Resolves a serialized category index, rejecting out-of-range values
/// the way [`SysNo::from_index`] rejects stale syscall indices.
pub fn category_from_index(idx: usize) -> Result<Category, ksa_json::Error> {
    Category::ALL
        .get(idx)
        .copied()
        .ok_or_else(|| ksa_json::Error::shape(format!("category index {idx} out of range")))
}

/// Maps a coverage block name onto the subsystem category that emitted
/// it, per the handler naming convention (`fs.*` filesystem, `net.*`
/// network stack, ...). Error blocks carry an `err.` prefix on top.
/// Infrastructure blocks (`cgroup.*`, `daemon.*`, `spec.*`) belong to
/// no single category and return `None`.
pub fn block_category(name: &str) -> Option<Category> {
    let name = name.strip_prefix("err.").unwrap_or(name);
    match name.split('.').next()? {
        "sched" => Some(Category::ProcessSched),
        "mm" => Some(Category::Memory),
        "io" => Some(Category::FileIo),
        "fs" => Some(Category::Filesystem),
        "ipc" => Some(Category::Ipc),
        "perm" => Some(Category::Permissions),
        "net" => Some(Category::Network),
        _ => None,
    }
}

/// Derives a profile from `corpus` by replaying every program through a
/// deterministic sandbox and reading the covered blocks. The allowlist
/// is the corpus's syscall set; the category set is the static union of
/// those calls' categories plus every subsystem the coverage block
/// names prove was entered.
pub fn derive_profile(name: &str, corpus: &Corpus, seed: u64) -> SpecProfile {
    let mut mask = SpecMask::empty();
    for prog in &corpus.programs {
        for call in &prog.calls {
            mask.insert(call.no);
        }
    }
    let mut sandbox = Sandbox::new(seed);
    let mut covered = CoverageSet::new();
    for prog in &corpus.programs {
        covered.merge(&sandbox.run_fresh(prog));
    }
    for id in covered.iter() {
        if let Some(cat) = block_category(block_name(id)) {
            mask.insert_cat(cat);
        }
    }
    SpecProfile {
        name: name.to_string(),
        mask,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_kernel::{Arg, Call, Program};

    fn fs_corpus() -> Corpus {
        Corpus {
            programs: vec![
                Program {
                    calls: vec![
                        Call::new(SysNo::Open, vec![Arg::Const(3), Arg::Const(1)]),
                        Call::new(SysNo::Stat, vec![Arg::Const(1)]),
                        Call::new(SysNo::Close, vec![Arg::Ref(0)]),
                    ],
                },
                Program {
                    calls: vec![
                        Call::new(SysNo::Open, vec![Arg::Const(5), Arg::Const(0)]),
                        Call::new(SysNo::Pread, vec![Arg::Ref(0), Arg::Const(4096)]),
                    ],
                },
            ],
        }
    }

    #[test]
    fn derivation_is_deterministic() {
        let c = fs_corpus();
        let a = derive_profile("fs", &c, 42);
        let b = derive_profile("fs", &c, 42);
        assert_eq!(a, b);
    }

    #[test]
    fn derivation_matches_the_corpus_surface() {
        let p = derive_profile("fs", &fs_corpus(), 42);
        assert!(p.mask.allows(SysNo::Open));
        assert!(p.mask.allows(SysNo::Pread));
        assert!(!p.mask.allows(SysNo::Socket));
        assert!(!p.mask.allows(SysNo::Clone));
        assert!(p.mask.allows_cat(Category::Filesystem));
        assert!(p.mask.allows_cat(Category::FileIo));
        assert!(!p.mask.allows_cat(Category::Network));
        assert!(!p.mask.allows_cat(Category::ProcessSched));
    }

    #[test]
    fn coverage_widens_categories_beyond_static_calls() {
        // Open's cold path allocates pages/dentries: the mm.* coverage
        // prefix drags Memory in even though no mm syscall is allowed.
        let p = derive_profile("fs", &fs_corpus(), 42);
        assert!(p.mask.allows_cat(Category::Memory));
        assert!(!p.mask.allows(SysNo::Mmap));
    }

    #[test]
    fn profile_roundtrips_through_json() {
        let p = derive_profile("fs", &fs_corpus(), 42);
        let back = SpecProfile::from_json(&p.to_json()).unwrap();
        assert_eq!(p, back);
        // Stability: a second encode of the decoded profile is
        // byte-identical (BTreeMap rendering is deterministic).
        assert_eq!(p.to_json(), back.to_json());
    }

    #[test]
    fn full_profile_roundtrips() {
        let p = SpecProfile::full("all");
        let back = SpecProfile::from_json(&p.to_json()).unwrap();
        assert!(back.mask.is_full());
    }

    #[test]
    fn unknown_sysno_is_a_structured_error() {
        let json = format!(
            "{{\"version\":{SPEC_SCHEMA_VERSION},\"name\":\"x\",\
             \"allowed\":[999],\"categories\":[]}}"
        );
        let err = SpecProfile::from_json(&json).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("999"), "names the offending index: {msg}");
    }

    #[test]
    fn unknown_category_is_a_structured_error() {
        let json = format!(
            "{{\"version\":{SPEC_SCHEMA_VERSION},\"name\":\"x\",\
             \"allowed\":[],\"categories\":[42]}}"
        );
        let err = SpecProfile::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("42"));
    }

    #[test]
    fn unversioned_profile_is_rejected() {
        let err = SpecProfile::from_json("{\"name\":\"x\",\"allowed\":[]}").unwrap_err();
        assert!(err.to_string().contains("schema version"));
    }

    #[test]
    fn future_version_is_rejected() {
        let json = SpecProfile::full("x").to_json().replace(
            &format!("\"version\":{SPEC_SCHEMA_VERSION}"),
            "\"version\":99",
        );
        let err = SpecProfile::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("99"));
    }
}
