//! The per-core corpus worker process.

use std::sync::Arc;

use ksa_desim::{
    BarrierId, CoreId, Effect, LatSnapshot, Ns, Process, SimCtx, TraceEventKind, WakeReason,
};
use ksa_kernel::coverage::CoverageSet;
use ksa_kernel::dispatch::dispatch_into;
use ksa_kernel::exec::OpRunner;
use ksa_kernel::ops::OpSeq;
use ksa_kernel::prog::Corpus;
use ksa_kernel::world::HasKernel;
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Encodes `(program, call)` into a record key.
pub fn site_key(site_base: &[u64], prog: usize, call: usize) -> u64 {
    site_base[prog] + call as u64
}

/// Builds the per-program site base offsets (cumulative call counts).
pub fn site_bases(corpus: &Corpus) -> Vec<u64> {
    let mut bases = Vec::with_capacity(corpus.programs.len());
    let mut acc = 0u64;
    for p in &corpus.programs {
        bases.push(acc);
        acc += p.len() as u64;
    }
    bases
}

enum Phase {
    /// Waiting to enter the next program (barrier or direct).
    ProgramStart,
    /// Executing a call through its op runner.
    InCall,
    /// Userspace glue between calls.
    Glue,
}

/// One worker: executes the whole corpus `iterations` times on its core,
/// synchronizing each program start across all workers when `sync` is
/// set.
pub struct CorpusWorker {
    corpus: Arc<Corpus>,
    site_base: Arc<Vec<u64>>,
    iterations: usize,
    sync: Option<BarrierId>,
    core: CoreId,
    instance: usize,
    slot: usize,
    rng: SmallRng,
    cover: CoverageSet,
    user_glue: Ns,
    daemon: bool,

    phase: Phase,
    iter: usize,
    prog: usize,
    call: usize,
    results: Vec<u64>,
    runner: OpRunner,
    runner_live: bool,
    seq_buf: OpSeq,
    args_buf: Vec<u64>,
    call_start: Ns,
    lat_before: LatSnapshot,
    lat_after: LatSnapshot,
    pending_result: u64,
}

impl CorpusWorker {
    /// Creates a worker bound to (`core`, `instance`, `slot`).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        corpus: Arc<Corpus>,
        site_base: Arc<Vec<u64>>,
        iterations: usize,
        sync: Option<BarrierId>,
        core: CoreId,
        instance: usize,
        slot: usize,
        seed: u64,
    ) -> Self {
        Self {
            corpus,
            site_base,
            iterations,
            sync,
            core,
            instance,
            slot,
            rng: SmallRng::seed_from_u64(seed),
            cover: CoverageSet::new(),
            user_glue: 200,
            daemon: false,
            phase: Phase::ProgramStart,
            iter: 0,
            prog: 0,
            call: 0,
            results: Vec::new(),
            runner: OpRunner::empty(),
            runner_live: false,
            seq_buf: OpSeq::new(),
            args_buf: Vec::new(),
            call_start: 0,
            lat_before: LatSnapshot::default(),
            lat_after: LatSnapshot::default(),
            pending_result: 0,
        }
    }

    /// Compiles the current call and arms its runner. Returns false when
    /// the current program is empty.
    fn begin_call<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) -> bool {
        let corpus = Arc::clone(&self.corpus);
        let program = &corpus.programs[self.prog];
        if self.call >= program.len() {
            return false;
        }
        let call = &program.calls[self.call];
        self.args_buf.clear();
        self.args_buf
            .extend(call.args.iter().map(|a| a.resolve(&self.results)));
        // Snapshot the engine's latency accounting before the call so the
        // snapshot pair brackets exactly this call's interval (dispatch
        // and lowering consume no virtual time).
        ctx.lat_snapshot_into(&mut self.lat_before);
        let (world, faults) = ctx.world_and_faults();
        let inst = &mut world.kernel_mut().instances[self.instance];
        dispatch_into(
            inst,
            self.slot,
            call.no,
            &self.args_buf,
            &mut self.rng,
            &mut self.cover,
            faults,
            &mut self.seq_buf,
        );
        self.pending_result = self.seq_buf.result;
        self.runner.relower(&self.seq_buf, inst, self.core);
        self.runner_live = true;
        self.call_start = ctx.now();
        if ctx.trace_enabled() {
            ctx.trace_mark(TraceEventKind::Syscall {
                no: call.no as u16,
                enter: true,
            });
            self.runner.trace_exits(ctx);
        }
        true
    }

    /// Advances past a finished call; returns the next effect.
    fn finish_call<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) -> Effect {
        let key = site_key(&self.site_base, self.prog, self.call);
        let latency = ctx.now() - self.call_start;
        ctx.record(key, latency);
        if self.runner_live {
            self.runner_live = false;
            let no = self.corpus.programs[self.prog].calls[self.call].no;
            ctx.lat_snapshot_into(&mut self.lat_after);
            if ctx.trace_enabled() {
                ctx.trace_mark(TraceEventKind::Syscall {
                    no: no as u16,
                    enter: false,
                });
            }
            let now = ctx.now();
            let (world, _faults) = ctx.world_and_faults();
            let attrib = world.kernel_mut().observe_syscall(
                no,
                &self.lat_before,
                &self.lat_after,
                self.runner.vm_exit_ns(),
                now,
            );
            // The components-tile-the-timeline invariant: the decomposed
            // call must account for every recorded nanosecond.
            debug_assert_eq!(attrib.total, latency, "attribution must sum to latency");
        }
        self.results.push(self.pending_result);
        self.call += 1;
        if self.call < self.corpus.programs[self.prog].len() {
            self.phase = Phase::Glue;
            return Effect::Delay(self.user_glue);
        }
        // Program finished: advance cursor.
        self.prog += 1;
        if self.prog >= self.corpus.programs.len() {
            self.prog = 0;
            self.iter += 1;
            if self.iter >= self.iterations {
                return Effect::Done;
            }
        }
        self.enter_program(ctx)
    }

    /// Transitions to the next program (through the barrier if syncing).
    fn enter_program<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) -> Effect {
        self.phase = Phase::ProgramStart;
        match self.sync {
            Some(b) => Effect::Barrier(b),
            None => self.start_program(ctx),
        }
    }

    /// Begins executing the current program's first call.
    fn start_program<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) -> Effect {
        self.call = 0;
        self.results.clear();
        self.phase = Phase::InCall;
        if !self.begin_call(ctx) {
            // Empty program: skip it.
            self.prog += 1;
            if self.prog >= self.corpus.programs.len() {
                self.prog = 0;
                self.iter += 1;
                if self.iter >= self.iterations {
                    return Effect::Done;
                }
            }
            return self.enter_program(ctx);
        }
        self.step_runner(ctx)
    }

    /// Steps the op runner, finishing the call when it runs dry.
    fn step_runner<W: HasKernel>(&mut self, ctx: &mut SimCtx<'_, W>) -> Effect {
        if self.runner_live {
            if let Some(effect) = self.runner.step(ctx) {
                return effect;
            }
        }
        self.finish_call(ctx)
    }

    /// Coverage this worker observed (for diagnostics).
    pub fn coverage(&self) -> &CoverageSet {
        &self.cover
    }

    /// Marks the worker as a background noise generator: it no longer
    /// keeps the simulation alive, so a co-located application decides
    /// when the run ends (used by the tailbench noise co-runners).
    pub fn as_daemon(mut self) -> Self {
        self.daemon = true;
        self
    }
}

impl<W: HasKernel> Process<W> for CorpusWorker {
    fn resume(&mut self, ctx: &mut SimCtx<'_, W>, wake: WakeReason) -> Effect {
        match self.phase {
            Phase::ProgramStart => {
                debug_assert!(matches!(
                    wake,
                    WakeReason::Start | WakeReason::BarrierReleased
                ));
                if self.corpus.programs.is_empty() || self.iterations == 0 {
                    return Effect::Done;
                }
                self.start_program(ctx)
            }
            Phase::InCall => self.step_runner(ctx),
            Phase::Glue => {
                self.phase = Phase::InCall;
                if self.begin_call(ctx) {
                    self.step_runner(ctx)
                } else {
                    self.finish_call(ctx)
                }
            }
        }
    }

    fn is_daemon(&self) -> bool {
        self.daemon
    }

    fn label(&self) -> &str {
        "corpus_worker"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_kernel::prog::Corpus;
    use ksa_kernel::{Arg, Call, Program, SysNo};

    #[test]
    fn site_bases_are_cumulative() {
        let c = Corpus {
            programs: vec![
                Program {
                    calls: vec![
                        Call::new(SysNo::Getpid, vec![]),
                        Call::new(SysNo::Getuid, vec![]),
                    ],
                },
                Program {
                    calls: vec![Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)])],
                },
            ],
        };
        let b = site_bases(&c);
        assert_eq!(b, vec![0, 2]);
        assert_eq!(site_key(&b, 0, 1), 1);
        assert_eq!(site_key(&b, 1, 0), 2);
    }
}
