//! Trace and attribution exporters.
//!
//! Two machine-readable views of a traced run:
//!
//! * [`chrome_trace_json`] renders a [`TraceLog`] in the Chrome
//!   trace-event format (the `chrome://tracing` / Perfetto JSON schema):
//!   one instant event per trace record, with the core as the `pid`
//!   lane, the simulated process as the `tid`, microsecond `ts` as the
//!   format requires, and the exact nanosecond payloads preserved
//!   losslessly in `args` (ksa-json keeps `u64` integers intact).
//! * [`attribution_json`] renders an [`AttributionTable`] as a summary
//!   object — grand total, per-syscall and per-category decompositions
//!   and per-label lock waits — for scripted comparison across
//!   environments.
//!
//! Both return strings; callers (`--trace-out` in the examples, CI
//! gates) decide where to write them.

use ksa_desim::{TraceEvent, TraceEventKind, TraceLog};
use ksa_json::Value;
use ksa_kernel::{Attribution, AttributionTable};

/// Renders one event's `args` object (exact ns values as JSON integers).
fn event_args(ev: &TraceEvent) -> Value {
    let mut args: Vec<(&'static str, Value)> = vec![("ts_ns", Value::from(ev.t))];
    match &ev.kind {
        TraceEventKind::Wake { reason } => args.push(("reason", Value::from(*reason))),
        TraceEventKind::Block { comp } => args.push(("comp", Value::from(comp.name()))),
        TraceEventKind::LockContend { lock, label } => {
            args.push(("lock", Value::from(lock.index())));
            args.push(("label", Value::from(*label)));
        }
        TraceEventKind::LockAcquired {
            lock,
            label,
            wait_ns,
            contended,
        } => {
            args.push(("lock", Value::from(lock.index())));
            args.push(("label", Value::from(*label)));
            args.push(("wait_ns", Value::from(*wait_ns)));
            args.push(("contended", Value::from(*contended)));
        }
        TraceEventKind::LockReleased {
            lock,
            label,
            held_ns,
        } => {
            args.push(("lock", Value::from(lock.index())));
            args.push(("label", Value::from(*label)));
            args.push(("held_ns", Value::from(*held_ns)));
        }
        TraceEventKind::RcuSync { dur_ns } => args.push(("dur_ns", Value::from(*dur_ns))),
        TraceEventKind::IpiBroadcast {
            targets,
            handler_ns,
        } => {
            args.push(("targets", Value::from(*targets)));
            args.push(("handler_ns", Value::from(*handler_ns)));
        }
        TraceEventKind::IoSubmit { bytes, dur_ns } => {
            args.push(("bytes", Value::from(*bytes)));
            args.push(("dur_ns", Value::from(*dur_ns)));
        }
        TraceEventKind::TimerTicks { n, cost_ns } => {
            args.push(("ticks", Value::from(*n)));
            args.push(("cost_ns", Value::from(*cost_ns)));
        }
        TraceEventKind::FaultInjected { kind, site } => {
            args.push(("fault", Value::from(kind.name())));
            args.push(("site", Value::str(site.clone())));
        }
        TraceEventKind::Syscall { no, enter } => {
            args.push(("no", Value::from(u64::from(*no))));
            args.push(("enter", Value::from(*enter)));
        }
        TraceEventKind::VmExit { kind, cost_ns } => {
            args.push(("kind", Value::from(*kind)));
            args.push(("cost_ns", Value::from(*cost_ns)));
        }
        TraceEventKind::Mark { label, a, b } => {
            args.push(("label", Value::from(*label)));
            args.push(("a", Value::from(*a)));
            args.push(("b", Value::from(*b)));
        }
    }
    Value::object(args)
}

/// Renders a trace in Chrome trace-event JSON (loadable in Perfetto /
/// `chrome://tracing`). Events are instants on a `(core, process)` lane;
/// `ts` is microseconds as the format demands, while `args.ts_ns` keeps
/// the exact virtual nanosecond.
pub fn chrome_trace_json(trace: &TraceLog) -> String {
    let events = trace.merged().into_iter().map(|ev| {
        Value::object([
            ("name", Value::from(ev.kind.name())),
            ("ph", Value::from("i")),
            ("s", Value::from("t")),
            ("pid", Value::from(ev.core.index())),
            ("tid", Value::from(ev.pid.index())),
            // Chrome's ts unit is µs; sub-µs precision rides in the
            // fractional part.
            ("ts", Value::from(ev.t as f64 / 1000.0)),
            ("args", event_args(ev)),
        ])
    });
    Value::object([
        ("displayTimeUnit", Value::from("ns")),
        ("traceEvents", Value::array(events)),
        (
            "otherData",
            Value::object([
                ("dropped_events", Value::from(trace.total_dropped())),
                ("retained_events", Value::from(trace.total_events())),
            ]),
        ),
    ])
    .render()
}

/// One attribution as a JSON object (`total_ns` plus every component).
fn attribution_value(calls: u64, a: &Attribution) -> Value {
    let mut fields: Vec<(&'static str, Value)> = vec![
        ("calls", Value::from(calls)),
        ("total_ns", Value::from(a.total)),
    ];
    for (name, v) in Attribution::COMPONENTS.iter().zip(a.values()) {
        fields.push((name, Value::from(v)));
    }
    Value::object(fields)
}

/// Renders an attribution table as a machine-readable summary.
pub fn attribution_json(table: &AttributionTable) -> String {
    let grand = table.grand_total();
    Value::object([
        ("calls", Value::from(table.calls())),
        ("grand_total", attribution_value(table.calls(), &grand)),
        (
            "by_sysno",
            Value::object(
                table
                    .by_sysno()
                    .map(|(no, (calls, a))| (no.name(), attribution_value(*calls, a))),
            ),
        ),
        (
            "by_category",
            Value::object(
                table
                    .by_category()
                    .map(|(cat, (calls, a))| (cat.name(), attribution_value(*calls, a))),
            ),
        ),
        (
            "lock_wait_ns_by_label",
            Value::object(
                table
                    .lock_wait_by_label
                    .iter()
                    .map(|(label, ns)| (*label, Value::from(*ns))),
            ),
        ),
    ])
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_desim::{CoreId, LockId, Ns, Pid, TraceRing};

    fn log_with(events: Vec<(Ns, TraceEventKind)>) -> TraceLog {
        let mut ring = TraceRing::new(events.len().max(1));
        for (i, (t, kind)) in events.into_iter().enumerate() {
            ring.push(TraceEvent {
                t,
                pid: Pid(i as u32),
                core: CoreId(0),
                kind,
            });
        }
        TraceLog {
            enabled: true,
            rings: vec![ring],
        }
    }

    #[test]
    fn chrome_trace_is_valid_json_with_event_array() {
        let log = log_with(vec![
            (
                1_500,
                TraceEventKind::LockAcquired {
                    lock: LockId(3),
                    label: "journal",
                    wait_ns: 250,
                    contended: true,
                },
            ),
            (2_000, TraceEventKind::Wake { reason: "lock" }),
        ]);
        let v = ksa_json::parse(&chrome_trace_json(&log)).unwrap();
        let evs = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0].get("name").unwrap().as_str().unwrap(),
            "lock_acquired"
        );
        assert_eq!(evs[0].get("ph").unwrap().as_str().unwrap(), "i");
        // 1500 ns = 1.5 µs.
        assert!((evs[0].get("ts").unwrap().as_f64().unwrap() - 1.5).abs() < 1e-12);
        let args = evs[0].get("args").unwrap();
        assert_eq!(args.get("label").unwrap().as_str().unwrap(), "journal");
        assert_eq!(args.get("wait_ns").unwrap().as_u64().unwrap(), 250);
        assert!(args.get("contended").unwrap().as_bool().unwrap());
    }

    #[test]
    fn large_u64_timestamps_roundtrip_exactly() {
        // Beyond 2^53: lost by f64, preserved by ksa-json's UInt path.
        let t: Ns = (1u64 << 60) + 12345;
        let log = log_with(vec![(
            t,
            TraceEventKind::Mark {
                label: "m",
                a: u64::MAX,
                b: 7,
            },
        )]);
        let v = ksa_json::parse(&chrome_trace_json(&log)).unwrap();
        let args = v.get("traceEvents").unwrap().as_array().unwrap()[0]
            .get("args")
            .unwrap()
            .clone();
        assert_eq!(args.get("ts_ns").unwrap().as_u64().unwrap(), t);
        assert_eq!(args.get("a").unwrap().as_u64().unwrap(), u64::MAX);
    }

    #[test]
    fn fault_sites_with_special_characters_are_escaped() {
        let log = log_with(vec![(
            10,
            TraceEventKind::FaultInjected {
                kind: ksa_desim::FaultKind::AllocFail,
                site: "mmap:\"zone\\lru\"\n".to_string(),
            },
        )]);
        let rendered = chrome_trace_json(&log);
        let v = ksa_json::parse(&rendered).unwrap();
        let args = v.get("traceEvents").unwrap().as_array().unwrap()[0]
            .get("args")
            .unwrap()
            .clone();
        assert_eq!(
            args.get("site").unwrap().as_str().unwrap(),
            "mmap:\"zone\\lru\"\n",
            "quotes, backslashes and newlines must survive the roundtrip"
        );
    }

    #[test]
    fn attribution_json_nests_components_by_sysno_and_category() {
        use ksa_desim::{LatBreakdown, LatComp, LatSnapshot};
        use ksa_kernel::SysNo;
        let mut table = AttributionTable::default();
        let before = LatSnapshot::default();
        let mut comps = LatBreakdown::default();
        comps.add(LatComp::OnCpu, 700);
        comps.add(LatComp::LockWait, 300);
        let after = LatSnapshot {
            comps,
            lock_waits: vec![("journal", 300)],
        };
        table.record(SysNo::Fsync, &before, &after, 100);
        let v = ksa_json::parse(&attribution_json(&table)).unwrap();
        assert_eq!(v.get("calls").unwrap().as_u64().unwrap(), 1);
        let fsync = v.get("by_sysno").unwrap().get("fsync").unwrap().clone();
        assert_eq!(fsync.get("total_ns").unwrap().as_u64().unwrap(), 1000);
        assert_eq!(fsync.get("on_cpu").unwrap().as_u64().unwrap(), 600);
        assert_eq!(fsync.get("vm_exit").unwrap().as_u64().unwrap(), 100);
        assert_eq!(fsync.get("lock_wait").unwrap().as_u64().unwrap(), 300);
        let labels = v.get("lock_wait_ns_by_label").unwrap();
        assert_eq!(labels.get("journal").unwrap().as_u64().unwrap(), 300);
        assert!(v.get("by_category").unwrap().get("file I/O").is_ok());
    }
}
