//! Lock-contention attribution: which kernel locks turn concurrency into
//! variability.
//!
//! The engine counts, per simulated lock, total acquisitions, how many
//! had to wait, and — since the lockstat upgrade — how *long* they
//! waited (total and worst-case nanoseconds). Aggregating those counters
//! by lock *label* across a run names the structures behind the tails —
//! the paper's Section 5 reading ("which kernel subsystems most benefit
//! from reductions in surface area?") made quantitative, in durations
//! rather than rates.

use std::collections::BTreeMap;

/// Aggregated contention for one lock label (e.g. `"journal"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockContention {
    /// Total acquisitions across all locks with this label.
    pub acquisitions: u64,
    /// Acquisitions that found the lock busy and queued.
    pub contended: u64,
    /// Total enqueue → grant wait across contended acquisitions, in ns.
    pub total_wait_ns: u64,
    /// Worst single enqueue → grant wait, in ns.
    pub max_wait_ns: u64,
}

impl LockContention {
    /// Fraction of acquisitions that had to wait.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }

    /// Mean wait per contended acquisition, in ns (0 when uncontended).
    pub fn mean_wait_ns(&self) -> u64 {
        self.total_wait_ns.checked_div(self.contended).unwrap_or(0)
    }
}

/// Per-label contention profile of one run.
#[derive(Debug, Clone, Default)]
pub struct ContentionProfile {
    /// Label → aggregated counters, sorted by label.
    pub by_label: BTreeMap<String, LockContention>,
}

impl ContentionProfile {
    /// Adds one lock's acquisition counters under `label` (no durations
    /// — kept for callers that only have rate data).
    pub fn add(&mut self, label: &str, acquisitions: u64, contended: u64) {
        self.add_waits(label, acquisitions, contended, 0, 0);
    }

    /// Adds one lock's counters *and* wait durations under `label`.
    pub fn add_waits(
        &mut self,
        label: &str,
        acquisitions: u64,
        contended: u64,
        total_wait_ns: u64,
        max_wait_ns: u64,
    ) {
        let e = self.by_label.entry(label.to_string()).or_default();
        e.acquisitions += acquisitions;
        e.contended += contended;
        e.total_wait_ns += total_wait_ns;
        e.max_wait_ns = e.max_wait_ns.max(max_wait_ns);
    }

    /// Total lock-wait nanoseconds across every label.
    pub fn total_wait_ns(&self) -> u64 {
        self.by_label.values().map(|c| c.total_wait_ns).sum()
    }

    /// Labels ordered by total wait time (worst first), falling back to
    /// contended count for profiles without duration data.
    pub fn hotspots(&self) -> Vec<(&str, LockContention)> {
        let mut v: Vec<(&str, LockContention)> = self
            .by_label
            .iter()
            .map(|(k, &c)| (k.as_str(), c))
            .collect();
        v.sort_by_key(|(_, c)| std::cmp::Reverse((c.total_wait_ns, c.contended)));
        v
    }

    /// Renders the profile as an aligned text table, worst waits first.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "lock                 acquisitions    contended     rate    total_wait_ns      max_wait_ns\n",
        );
        for (label, c) in self.hotspots() {
            out.push_str(&format!(
                "{:<20} {:>12} {:>12} {:>8.1}% {:>16} {:>16}\n",
                label,
                c.acquisitions,
                c.contended,
                100.0 * c.contention_rate(),
                c.total_wait_ns,
                c.max_wait_ns
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_aggregates_by_label() {
        let mut p = ContentionProfile::default();
        p.add("journal", 100, 40);
        p.add("journal", 50, 10);
        p.add("dcache", 500, 5);
        let j = p.by_label["journal"];
        assert_eq!(j.acquisitions, 150);
        assert_eq!(j.contended, 50);
        assert!((j.contention_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn add_waits_sums_totals_and_keeps_worst_max() {
        let mut p = ContentionProfile::default();
        p.add_waits("journal", 10, 4, 1_000, 600);
        p.add_waits("journal", 10, 2, 500, 400);
        let j = p.by_label["journal"];
        assert_eq!(j.total_wait_ns, 1_500);
        assert_eq!(j.max_wait_ns, 600, "max is a max, not a sum");
        assert_eq!(j.mean_wait_ns(), 250);
        assert_eq!(p.total_wait_ns(), 1_500);
    }

    #[test]
    fn hotspots_sort_by_wait_time() {
        let mut p = ContentionProfile::default();
        p.add_waits("a", 10, 9, 100, 100);
        p.add_waits("b", 10, 1, 9_000, 9_000);
        p.add_waits("c", 10, 5, 700, 300);
        let hot: Vec<&str> = p.hotspots().iter().map(|(l, _)| *l).collect();
        assert_eq!(hot, vec!["b", "c", "a"], "durations, not counts, rank");
    }

    #[test]
    fn hotspots_without_durations_fall_back_to_contended() {
        let mut p = ContentionProfile::default();
        p.add("a", 10, 1);
        p.add("b", 10, 9);
        p.add("c", 10, 5);
        let hot: Vec<&str> = p.hotspots().iter().map(|(l, _)| *l).collect();
        assert_eq!(hot, vec!["b", "c", "a"]);
    }

    #[test]
    fn render_contains_labels_rates_and_waits() {
        let mut p = ContentionProfile::default();
        p.add_waits("runqueue", 4, 2, 12_345, 9_000);
        let s = p.render();
        assert!(s.contains("runqueue"));
        assert!(s.contains("50.0%"));
        assert!(s.contains("12345"));
        assert!(s.contains("9000"));
    }

    #[test]
    fn zero_acquisitions_rate_is_zero() {
        let c = LockContention::default();
        assert_eq!(c.contention_rate(), 0.0);
        assert_eq!(c.mean_wait_ns(), 0);
    }
}
