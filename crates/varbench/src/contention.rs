//! Lock-contention attribution: which kernel locks turn concurrency into
//! variability.
//!
//! The engine counts, per simulated lock, total acquisitions and how many
//! had to wait. Aggregating those counters by lock *label* across a run
//! names the structures behind the tails — the paper's Section 5 reading
//! ("which kernel subsystems most benefit from reductions in surface
//! area?") made quantitative.

use std::collections::BTreeMap;


/// Aggregated contention for one lock label (e.g. `"journal"`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LockContention {
    /// Total acquisitions across all locks with this label.
    pub acquisitions: u64,
    /// Acquisitions that found the lock busy and queued.
    pub contended: u64,
}

impl LockContention {
    /// Fraction of acquisitions that had to wait.
    pub fn contention_rate(&self) -> f64 {
        if self.acquisitions == 0 {
            0.0
        } else {
            self.contended as f64 / self.acquisitions as f64
        }
    }
}

/// Per-label contention profile of one run.
#[derive(Debug, Clone, Default)]
pub struct ContentionProfile {
    /// Label → aggregated counters, sorted by label.
    pub by_label: BTreeMap<String, LockContention>,
}

impl ContentionProfile {
    /// Adds one lock's counters under `label`.
    pub fn add(&mut self, label: &str, acquisitions: u64, contended: u64) {
        let e = self.by_label.entry(label.to_string()).or_default();
        e.acquisitions += acquisitions;
        e.contended += contended;
    }

    /// Labels ordered by contended count, worst first.
    pub fn hotspots(&self) -> Vec<(&str, LockContention)> {
        let mut v: Vec<(&str, LockContention)> = self
            .by_label
            .iter()
            .map(|(k, &c)| (k.as_str(), c))
            .collect();
        v.sort_by_key(|(_, c)| std::cmp::Reverse(c.contended));
        v
    }

    /// Renders the profile as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "lock                 acquisitions    contended     rate\n",
        );
        for (label, c) in self.hotspots() {
            out.push_str(&format!(
                "{:<20} {:>12} {:>12} {:>8.1}%\n",
                label,
                c.acquisitions,
                c.contended,
                100.0 * c.contention_rate()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_aggregates_by_label() {
        let mut p = ContentionProfile::default();
        p.add("journal", 100, 40);
        p.add("journal", 50, 10);
        p.add("dcache", 500, 5);
        let j = p.by_label["journal"];
        assert_eq!(j.acquisitions, 150);
        assert_eq!(j.contended, 50);
        assert!((j.contention_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn hotspots_sort_by_contended() {
        let mut p = ContentionProfile::default();
        p.add("a", 10, 1);
        p.add("b", 10, 9);
        p.add("c", 10, 5);
        let hot: Vec<&str> = p.hotspots().iter().map(|(l, _)| *l).collect();
        assert_eq!(hot, vec!["b", "c", "a"]);
    }

    #[test]
    fn render_contains_labels_and_rates() {
        let mut p = ContentionProfile::default();
        p.add("runqueue", 4, 2);
        let s = p.render();
        assert!(s.contains("runqueue"));
        assert!(s.contains("50.0%"));
    }

    #[test]
    fn zero_acquisitions_rate_is_zero() {
        let c = LockContention::default();
        assert_eq!(c.contention_rate(), 0.0);
    }
}
