//! # ksa-varbench — the barrier-synchronized measurement harness
//!
//! Reproduces the paper's varbench apparatus (Section 3.2): the same
//! corpus of system-call programs is deployed on **every core** of the
//! machine, and a global barrier synchronizes the start of every program
//! across cores — including across VM boundaries, as the original does
//! with MPI over a virtual network. Synchronized starts maximize
//! concurrent pressure on shared kernel structures, which is what makes
//! latent variability measurable.
//!
//! Each worker records one latency sample per `(program, call index)`
//! site per iteration; [`run`] aggregates them into per-site
//! distributions tagged with the syscall and its categories.

pub mod contention;
pub mod run;
pub mod traceout;
pub mod worker;

pub use contention::{ContentionProfile, LockContention};
pub use run::{
    outcomes_to_json, run, run_configs, run_configs_hooked, run_configs_jobs, run_configs_retry,
    run_configs_retry_jobs, run_hooked, run_isolated, RunConfig, RunError, RunResult, SiteResult,
    TrialOutcome,
};
pub use traceout::{attribution_json, chrome_trace_json};
pub use worker::CorpusWorker;
