//! Running a corpus over an environment and aggregating samples.
//!
//! The harness is **crash-proof** and **parallel**: a trial that
//! deadlocks, livelocks or panics must not take the rest of a
//! measurement campaign with it, and independent trials must not wait on
//! each other. [`run`] returns `Result` instead of panicking;
//! [`run_configs`] executes trials concurrently on the deterministic
//! work-stealing pool ([`ksa_desim::pool`]) with each trial isolated
//! behind `catch_unwind`; [`run_configs_retry`] re-runs failed trials a
//! bounded number of times under derived seeds while preserving every
//! completed result. Worker counts come from the caller (`--jobs`) or
//! the `KSA_JOBS` environment variable; `jobs == 1` is the sequential
//! baseline, and for every worker count the output vector is
//! **bit-identical** to that baseline (the engine is single-threaded per
//! trial, so parallelism across trials cannot perturb simulated time —
//! `parallel_runner_matches_sequential_bit_identically` in
//! `tests/properties.rs` pins this).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

use ksa_desim::{Engine, EngineParams, SimError, TraceConfig, TraceLog};
use ksa_envsim::{build_env_with, EnvSpec};
use ksa_kernel::prog::Corpus;
use ksa_kernel::world::{HasKernel, KernelWorld};
use ksa_kernel::{AttributionTable, Category, KernelTelemetry, SpecMask, SysNo};
use ksa_stats::Samples;
use ksa_telemetry::{Registry, TelemetryConfig};

use crate::contention::ContentionProfile;
use crate::worker::{site_bases, CorpusWorker};

/// One measurement run's configuration.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// The environment to deploy.
    pub env: EnvSpec,
    /// Corpus iterations (the paper uses 100).
    pub iterations: usize,
    /// Barrier-synchronize program starts across all cores (the paper's
    /// default; `false` is the ablation).
    pub sync: bool,
    /// Trial seed.
    pub seed: u64,
    /// Watchdog: abort the trial as livelocked after this many engine
    /// events (0 = unlimited). Converts a never-terminating simulation
    /// into a reportable [`RunError::Sim`] instead of a hung campaign.
    pub max_events: u64,
    /// Record a trace (per-core event rings) during the run. Strictly
    /// observational: enabling it cannot change any measured latency
    /// (the zero-observer-effect property test pins this). Latency
    /// *attribution* is always collected; this switch only governs the
    /// event rings exported as Chrome trace JSON.
    pub trace: bool,
    /// Collect telemetry (engine self-profile counters plus kernel
    /// subsystem gauges and per-category syscall series). Strictly
    /// observational like `trace`: a disabled run is bit-identical to
    /// one that never heard of telemetry (`ablation_obs` gates this).
    pub metrics: bool,
    /// Specialization mask applied to every kernel instance. `None`
    /// (and `Some(SpecMask::full())`) is the unspecialized kernel,
    /// bit-identical to a run without the field; a narrower mask gates
    /// daemons and lock footprint and turns out-of-allowlist calls into
    /// `ENOSYS` error paths.
    pub spec: Option<SpecMask>,
}

/// Why a trial failed.
#[derive(Debug)]
pub enum RunError {
    /// The simulation stopped abnormally (deadlock or watchdog-detected
    /// livelock).
    Sim(SimError),
    /// The trial panicked; the payload is the panic message.
    Panicked(String),
}

impl std::fmt::Display for RunError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation failed: {e}"),
            RunError::Panicked(msg) => write!(f, "trial panicked: {msg}"),
        }
    }
}

impl std::error::Error for RunError {}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

/// One trial's final outcome under [`run_configs_retry`].
#[derive(Debug)]
pub struct TrialOutcome {
    /// The last attempt's result.
    pub result: Result<RunResult, RunError>,
    /// Attempts made (1 = succeeded or failed terminally first try).
    pub attempts: u32,
    /// Errors from the earlier failed attempts, in order.
    pub failures: Vec<RunError>,
}

impl TrialOutcome {
    /// The completed result, if the trial ever succeeded.
    pub fn ok(&self) -> Option<&RunResult> {
        self.result.as_ref().ok()
    }
}

/// Per-site aggregated latencies.
#[derive(Debug, Clone)]
pub struct SiteResult {
    /// Program index in the corpus.
    pub prog: usize,
    /// Call index within the program.
    pub call: usize,
    /// The syscall at this site.
    pub sysno: SysNo,
    /// All latency samples (cores × iterations).
    pub samples: Samples,
}

impl SiteResult {
    /// Whether this site belongs to `cat`.
    pub fn in_category(&self, cat: Category) -> bool {
        self.sysno.categories().contains(&cat)
    }
}

/// A completed run.
#[derive(Debug)]
pub struct RunResult {
    /// The configuration that produced it.
    pub config: RunConfig,
    /// Per-site results, ordered by (prog, call).
    pub sites: Vec<SiteResult>,
    /// Final virtual clock (run length in simulated time).
    pub sim_ns: u64,
    /// Engine events processed — the simulated-work unit the bench
    /// suite converts to events/second throughput.
    pub events: u64,
    /// Which kernel locks were contended during the run, with wait
    /// durations.
    pub contention: ContentionProfile,
    /// Per-syscall / per-category latency attribution (always collected).
    pub attrib: AttributionTable,
    /// The recorded trace (empty rings unless [`RunConfig::trace`]).
    pub trace: TraceLog,
    /// The merged telemetry registry: engine self-profile, kernel
    /// subsystem gauges, per-category syscall counters and per-label
    /// lock-wait totals (inert unless [`RunConfig::metrics`]).
    pub metrics: Registry,
}

impl RunResult {
    /// Iterates over sites in `cat`.
    pub fn sites_in(&self, cat: Category) -> impl Iterator<Item = &SiteResult> {
        self.sites.iter().filter(move |s| s.in_category(cat))
    }

    /// Collects one summary value per site via `f` (e.g. median or max),
    /// optionally filtered to a category.
    pub fn per_site(
        &mut self,
        cat: Option<Category>,
        f: impl Fn(&mut Samples) -> Option<u64>,
    ) -> Vec<u64> {
        self.sites
            .iter_mut()
            .filter(|s| cat.is_none_or(|c| s.in_category(c)))
            .filter_map(|s| f(&mut s.samples))
            .collect()
    }
}

/// Deploys `corpus` on `cfg.env` with one worker per core and runs to
/// completion, aggregating per-site samples.
pub fn run(cfg: &RunConfig, corpus: &Corpus) -> Result<RunResult, RunError> {
    run_hooked(cfg, corpus, |_| {})
}

/// Like [`run`], but lets the caller mutate the engine after the
/// environment is built and before workers spawn — used by ablations
/// (e.g. zeroing virtualization profiles to isolate the isolation
/// benefit from the virtualization cost, or installing a
/// [`ksa_desim::FaultPlan`] for fault-injection trials).
pub fn run_hooked(
    cfg: &RunConfig,
    corpus: &Corpus,
    hook: impl FnOnce(&mut Engine<KernelWorld>),
) -> Result<RunResult, RunError> {
    let shared = SharedCorpus::new(corpus);
    run_hooked_shared(cfg, &shared, hook)
}

/// A corpus prepared for sharing across trials: the workers' owned
/// handle plus the precomputed per-site record keys. Campaign runners
/// build this once so each trial clones an `Arc`, not the corpus.
struct SharedCorpus {
    corpus: Arc<Corpus>,
    bases: Arc<Vec<u64>>,
}

impl SharedCorpus {
    fn new(corpus: &Corpus) -> Self {
        Self {
            corpus: Arc::new(corpus.clone()),
            bases: Arc::new(site_bases(corpus)),
        }
    }
}

fn run_hooked_shared(
    cfg: &RunConfig,
    shared: &SharedCorpus,
    hook: impl FnOnce(&mut Engine<KernelWorld>),
) -> Result<RunResult, RunError> {
    let corpus = &*shared.corpus;
    let mut engine: Engine<KernelWorld> =
        Engine::new(KernelWorld::new(), EngineParams::default(), cfg.seed);
    if cfg.metrics {
        engine.set_telemetry(TelemetryConfig::enabled());
        engine.world_mut().kernel_mut().metrics = KernelTelemetry::new(TelemetryConfig::enabled());
    }
    let built = build_env_with(&mut engine, &cfg.env, cfg.seed, cfg.spec);
    if cfg.max_events > 0 {
        engine.set_event_budget(cfg.max_events);
    }
    if cfg.trace {
        engine.set_trace(TraceConfig::enabled());
    }
    hook(&mut engine);

    let barrier = cfg
        .sync
        .then(|| engine.add_barrier(built.cores.len() as u32));
    for (i, &core) in built.cores.iter().enumerate() {
        let (instance, slot) = {
            let w = engine.world().kernel();
            w.locate(core)
        };
        let worker = CorpusWorker::new(
            Arc::clone(&shared.corpus),
            Arc::clone(&shared.bases),
            cfg.iterations,
            barrier,
            core,
            instance,
            slot,
            cfg.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
        );
        engine.spawn(core, Box::new(worker), 0);
    }

    let res = engine.run()?;

    // Group records by site key.
    let n_cores = built.cores.len();
    let mut sites: Vec<SiteResult> = Vec::new();
    for (pi, p) in corpus.programs.iter().enumerate() {
        for (ci, call) in p.calls.iter().enumerate() {
            sites.push(SiteResult {
                prog: pi,
                call: ci,
                sysno: call.no,
                samples: Samples::with_capacity(n_cores * cfg.iterations),
            });
        }
    }
    for rec in &res.records {
        let idx = rec.key as usize;
        if idx < sites.len() {
            sites[idx].samples.push(rec.value);
        }
    }
    for s in &mut sites {
        s.samples.freeze();
    }
    let mut contention = ContentionProfile::default();
    for (label, acq, cont, total_wait, max_wait, _hist) in engine.all_lock_wait_stats() {
        contention.add_waits(label, acq, cont, total_wait, max_wait);
    }
    let trace = engine.take_trace();
    let now = engine.now();
    let kernel_metrics = {
        let kw = engine.world_mut().kernel_mut();
        kw.metrics.finish(now, &kw.instances)
    };
    let mut metrics = engine.take_telemetry();
    if metrics.enabled() {
        // Fold the engine's per-label lock-wait stats in: the "lockstat"
        // view of software interference, grouped by lock label.
        for (label, acq, cont, total_wait, _max, _hist) in engine.all_lock_wait_stats() {
            let labels = [("label", label.to_string())];
            let a = metrics.counter("lock_acquisitions", &labels);
            let c = metrics.counter("lock_contended", &labels);
            let w = metrics.counter("lock_wait_ns", &labels);
            metrics.add(a, acq);
            metrics.add(c, cont);
            metrics.add(w, total_wait);
        }
    }
    metrics.absorb(&kernel_metrics, &[]);
    let attrib = std::mem::take(&mut engine.world_mut().kernel_mut().attrib);
    Ok(RunResult {
        config: *cfg,
        sites,
        sim_ns: res.clock,
        events: res.events,
        contention,
        attrib,
        trace,
        metrics,
    })
}

/// Runs one trial with panic isolation: a panic anywhere inside the
/// engine or the handlers becomes a [`RunError::Panicked`] instead of
/// unwinding into the caller.
pub fn run_isolated(cfg: &RunConfig, corpus: &Corpus) -> Result<RunResult, RunError> {
    match catch_unwind(AssertUnwindSafe(|| run(cfg, corpus))) {
        Ok(r) => r,
        Err(payload) => Err(RunError::Panicked(panic_message(payload.as_ref()))),
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs several configurations concurrently on the deterministic
/// work-stealing pool, with results in input order. Worker count is the
/// auto default (`KSA_JOBS` or available parallelism); see
/// [`run_configs_jobs`] for an explicit `--jobs` knob. Each trial is
/// panic-isolated: one failing trial never discards the others' results.
pub fn run_configs(configs: &[RunConfig], corpus: &Corpus) -> Vec<Result<RunResult, RunError>> {
    run_configs_jobs(configs, corpus, 0)
}

/// Like [`run_configs`] with an explicit worker count (`0` = auto,
/// `1` = strictly sequential on the calling thread). Every worker count
/// produces a bit-identical output vector: the engine is single-threaded
/// per trial and results land in index-addressed slots.
pub fn run_configs_jobs(
    configs: &[RunConfig],
    corpus: &Corpus,
    jobs: usize,
) -> Vec<Result<RunResult, RunError>> {
    run_configs_hooked(configs, corpus, jobs, &|_, _| {})
}

/// The fully general campaign runner: [`run_configs_jobs`] plus a
/// per-trial engine hook (`hook(trial_index, &mut engine)`) applied
/// after the environment is built and before workers spawn — how a
/// campaign installs [`ksa_desim::FaultPlan`]s or ablation overrides on
/// specific trials. The hook must be `Sync`: it is shared by all pool
/// workers (each invocation still runs on exactly one trial's thread).
pub fn run_configs_hooked<H>(
    configs: &[RunConfig],
    corpus: &Corpus,
    jobs: usize,
    hook: &H,
) -> Vec<Result<RunResult, RunError>>
where
    H: Fn(usize, &mut Engine<KernelWorld>) + Sync,
{
    let shared = SharedCorpus::new(corpus);
    let shared = &shared;
    let tasks: Vec<_> = configs
        .iter()
        .enumerate()
        .map(|(i, cfg)| move || run_hooked_shared(cfg, shared, |engine| hook(i, engine)))
        .collect();
    ksa_desim::pool::run_tasks(jobs, tasks)
        .into_iter()
        .map(|r| match r {
            Ok(res) => res,
            // The pool already ran the trial under catch_unwind; a
            // payload here is the trial's own panic. Report it in the
            // trial's slot rather than propagating.
            Err(payload) => Err(RunError::Panicked(panic_message(payload.as_ref()))),
        })
        .collect()
}

/// SplitMix64 finalizer, used to derive retry seeds.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// Like [`run_configs`], but failed trials are retried up to
/// `max_retries` times under derived seeds (`seed ^ splitmix64(attempt)`)
/// so a seed-dependent pathology doesn't permanently lose the trial.
/// Completed trials are never re-run; every attempt's error is kept for
/// the report.
pub fn run_configs_retry(
    configs: &[RunConfig],
    corpus: &Corpus,
    max_retries: u32,
) -> Vec<TrialOutcome> {
    run_configs_retry_jobs(configs, corpus, max_retries, 0)
}

/// [`run_configs_retry`] with an explicit pool worker count (`0` = auto,
/// `1` = sequential). Retry semantics are identical for every worker
/// count: outcome `i` always corresponds to input config `i`, retries
/// re-run only failed indices, and retry seeds derive from the *input*
/// config's seed — never from execution order.
pub fn run_configs_retry_jobs(
    configs: &[RunConfig],
    corpus: &Corpus,
    max_retries: u32,
    jobs: usize,
) -> Vec<TrialOutcome> {
    let first = run_configs_jobs(configs, corpus, jobs);
    let mut outcomes: Vec<TrialOutcome> = first
        .into_iter()
        .map(|result| TrialOutcome {
            result,
            attempts: 1,
            failures: Vec::new(),
        })
        .collect();
    for attempt in 1..=max_retries {
        let retry_idx: Vec<usize> = outcomes
            .iter()
            .enumerate()
            .filter(|(_, o)| o.result.is_err())
            .map(|(i, _)| i)
            .collect();
        if retry_idx.is_empty() {
            break;
        }
        let retry_cfgs: Vec<RunConfig> = retry_idx
            .iter()
            .map(|&i| RunConfig {
                seed: configs[i].seed ^ splitmix64(attempt as u64),
                ..configs[i]
            })
            .collect();
        let results = run_configs_jobs(&retry_cfgs, corpus, jobs);
        for (&i, result) in retry_idx.iter().zip(results) {
            let o = &mut outcomes[i];
            let prev = std::mem::replace(&mut o.result, result);
            if let Err(e) = prev {
                o.failures.push(e);
            }
            o.attempts += 1;
        }
    }
    outcomes
}

/// Serializes trial outcomes to JSON — the partial-result record a
/// campaign persists so completed trials survive later failures. Failed
/// trials appear with their error strings instead of data.
pub fn outcomes_to_json(outcomes: &[TrialOutcome]) -> String {
    use ksa_json::Value;
    Value::array(outcomes.iter().map(|o| {
        let mut fields = vec![
            ("attempts", Value::from(o.attempts)),
            (
                "failures",
                Value::array(o.failures.iter().map(|e| Value::str(e.to_string()))),
            ),
        ];
        match &o.result {
            Ok(res) => {
                fields.push(("ok", Value::from(true)));
                fields.push(("env", Value::str(format!("{:?}", res.config.env))));
                fields.push(("seed", Value::from(res.config.seed)));
                fields.push(("sim_ns", Value::from(res.sim_ns)));
                fields.push(("sites", Value::from(res.sites.len())));
                fields.push((
                    "samples",
                    Value::from(
                        res.sites
                            .iter()
                            .map(|s| s.samples.len() as u64)
                            .sum::<u64>(),
                    ),
                ));
            }
            Err(e) => {
                fields.push(("ok", Value::from(false)));
                fields.push(("error", Value::str(e.to_string())));
            }
        }
        Value::object(fields)
    }))
    .render()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_envsim::{EnvKind, Machine};
    use ksa_kernel::{Arg, Call, Program};

    fn tiny_corpus() -> Corpus {
        Corpus {
            programs: vec![
                Program {
                    calls: vec![
                        Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                        Call::new(SysNo::Write, vec![Arg::Ref(0), Arg::Const(8192)]),
                        Call::new(SysNo::Fsync, vec![Arg::Ref(0)]),
                        Call::new(SysNo::Close, vec![Arg::Ref(0)]),
                    ],
                },
                Program {
                    calls: vec![
                        Call::new(SysNo::Mmap, vec![Arg::Const(32), Arg::Const(1)]),
                        Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
                    ],
                },
                Program {
                    calls: vec![
                        Call::new(SysNo::Getpid, vec![]),
                        Call::new(SysNo::SchedYield, vec![]),
                    ],
                },
            ],
        }
    }

    fn cfg(kind: EnvKind, iters: usize) -> RunConfig {
        RunConfig {
            env: EnvSpec::new(
                Machine {
                    cores: 4,
                    mem_mib: 1024,
                },
                kind,
            ),
            iterations: iters,
            sync: true,
            seed: 99,
            max_events: 0,
            trace: false,
            metrics: false,
            spec: None,
        }
    }

    #[test]
    fn run_collects_all_samples() {
        let corpus = tiny_corpus();
        let res = run(&cfg(EnvKind::Native, 5), &corpus).unwrap();
        assert_eq!(res.sites.len(), 8);
        for s in &res.sites {
            assert_eq!(
                s.samples.len(),
                4 * 5,
                "site {}/{} ({}) should have cores×iters samples",
                s.prog,
                s.call,
                s.sysno.name()
            );
        }
        assert!(res.sim_ns > 0);
    }

    #[test]
    fn sync_serializes_program_starts() {
        // With sync on, all cores execute program boundaries together;
        // latencies for the contended fsync site should exceed the
        // unsynced case on average (contention is concentrated).
        let corpus = tiny_corpus();
        let mut synced = run(&cfg(EnvKind::Native, 10), &corpus).unwrap();
        let mut unsynced = run(
            &RunConfig {
                sync: false,
                ..cfg(EnvKind::Native, 10)
            },
            &corpus,
        )
        .unwrap();
        // Just verify both produce complete data and the synced run is
        // not faster in total (barriers serialize).
        assert!(synced.sim_ns >= unsynced.sim_ns / 4);
        let s_med = synced.per_site(None, |s| s.median());
        let u_med = unsynced.per_site(None, |s| s.median());
        assert_eq!(s_med.len(), u_med.len());
    }

    #[test]
    fn vm_env_runs_and_isolates() {
        let corpus = tiny_corpus();
        let res = run(&cfg(EnvKind::Vm(4), 5), &corpus).unwrap();
        assert_eq!(res.sites.len(), 8);
        for s in &res.sites {
            assert_eq!(s.samples.len(), 20);
        }
    }

    #[test]
    fn container_env_runs() {
        let corpus = tiny_corpus();
        let res = run(&cfg(EnvKind::Container(4), 3), &corpus).unwrap();
        assert_eq!(res.sites[0].samples.len(), 12);
    }

    #[test]
    fn per_site_filters_by_category() {
        let corpus = tiny_corpus();
        let mut res = run(&cfg(EnvKind::Native, 2), &corpus).unwrap();
        let mm = res.per_site(Some(Category::Memory), |s| s.median());
        assert_eq!(mm.len(), 2, "mmap + munmap");
        let all = res.per_site(None, |s| s.median());
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn attribution_is_collected_and_exact() {
        let corpus = tiny_corpus();
        let res = run(&cfg(EnvKind::Native, 3), &corpus).unwrap();
        // 8 sites × 4 cores × 3 iterations.
        assert_eq!(res.attrib.calls(), 8 * 4 * 3);
        let grand = res.attrib.grand_total();
        assert!(grand.total > 0);
        assert!(grand.is_exact(), "components must sum to total");
        for (no, (calls, agg)) in res.attrib.by_sysno() {
            assert!(*calls > 0);
            assert!(agg.is_exact(), "{}: inexact aggregate", no.name());
        }
        // fsync under sync pressure contends the journal; wait durations
        // must show up both per label and in the component totals.
        assert!(res.attrib.grand_total().lock_wait > 0);
        assert!(!res.attrib.lock_wait_by_label.is_empty());
    }

    #[test]
    fn contention_profile_reports_wait_durations() {
        let corpus = tiny_corpus();
        let res = run(&cfg(EnvKind::Native, 5), &corpus).unwrap();
        assert!(
            res.contention.total_wait_ns() > 0,
            "4 synced cores must queue somewhere"
        );
        let hot = res.contention.hotspots();
        // Worst-first by duration.
        for w in hot.windows(2) {
            assert!(
                (w[0].1.total_wait_ns, w[0].1.contended)
                    >= (w[1].1.total_wait_ns, w[1].1.contended)
            );
        }
        // Per-label waits in the attribution table agree with the
        // engine-level profile in aggregate: both came from the same
        // grants.
        let attrib_wait: u64 = res.attrib.lock_wait_by_label.values().sum();
        assert_eq!(attrib_wait, res.attrib.grand_total().lock_wait);
    }

    #[test]
    fn tracing_is_observationally_neutral_and_records() {
        let corpus = tiny_corpus();
        let off = run(&cfg(EnvKind::Vm(2), 2), &corpus).unwrap();
        let on = run(
            &RunConfig {
                trace: true,
                ..cfg(EnvKind::Vm(2), 2)
            },
            &corpus,
        )
        .unwrap();
        assert_eq!(off.sim_ns, on.sim_ns, "tracing must not perturb timing");
        for (a, b) in off.sites.iter().zip(&on.sites) {
            assert_eq!(a.samples.raw(), b.samples.raw());
        }
        assert_eq!(off.trace.total_events(), 0);
        assert!(on.trace.total_events() > 0);
        // The rings carry kernel-layer syscall marks, not just engine
        // events.
        assert!(on
            .trace
            .merged()
            .iter()
            .any(|e| matches!(e.kind, ksa_desim::TraceEventKind::Syscall { .. })));
    }

    #[test]
    fn runs_are_deterministic() {
        let corpus = tiny_corpus();
        let a = run(&cfg(EnvKind::Native, 3), &corpus).unwrap();
        let b = run(&cfg(EnvKind::Native, 3), &corpus).unwrap();
        assert_eq!(a.sim_ns, b.sim_ns);
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.samples.raw(), y.samples.raw());
        }
    }

    #[test]
    fn parallel_configs_match_serial() {
        let corpus = tiny_corpus();
        let cfgs = [cfg(EnvKind::Native, 2), cfg(EnvKind::Vm(2), 2)];
        let par = run_configs(&cfgs, &corpus);
        let ser: Vec<RunResult> = cfgs.iter().map(|c| run(c, &corpus).unwrap()).collect();
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.as_ref().unwrap().sim_ns, s.sim_ns);
        }
    }

    #[test]
    fn watchdog_reports_stalled_instead_of_hanging() {
        let corpus = tiny_corpus();
        let res = run(
            &RunConfig {
                max_events: 50,
                ..cfg(EnvKind::Native, 5)
            },
            &corpus,
        );
        match res {
            Err(RunError::Sim(SimError::Stalled { events, .. })) => {
                assert_eq!(events, 50);
            }
            other => panic!("expected Stalled, got {other:?}"),
        }
    }

    #[test]
    fn one_stalled_trial_does_not_lose_the_others() {
        // The acceptance scenario: a campaign where one trial livelocks
        // (here: killed by a tiny event budget) must still complete and
        // return full results for every other trial.
        let corpus = tiny_corpus();
        let cfgs = [
            cfg(EnvKind::Native, 2),
            RunConfig {
                max_events: 50,
                ..cfg(EnvKind::Vm(2), 2)
            },
            cfg(EnvKind::Container(4), 2),
        ];
        let results = run_configs(&cfgs, &corpus);
        assert_eq!(results.len(), 3);
        let ok = results[0].as_ref().unwrap();
        assert_eq!(ok.sites.len(), 8);
        assert!(ok.sites.iter().all(|s| s.samples.len() == 4 * 2));
        assert!(matches!(
            results[1],
            Err(RunError::Sim(SimError::Stalled { .. }))
        ));
        let ok = results[2].as_ref().unwrap();
        assert_eq!(ok.sites.len(), 8);
        assert!(ok.sites.iter().all(|s| s.samples.len() == 4 * 2));
    }

    #[test]
    fn retry_reruns_only_failures_and_keeps_their_history() {
        let corpus = tiny_corpus();
        let cfgs = [
            cfg(EnvKind::Native, 2),
            RunConfig {
                max_events: 50,
                ..cfg(EnvKind::Native, 2)
            },
        ];
        let outcomes = run_configs_retry(&cfgs, &corpus, 2);
        assert_eq!(outcomes.len(), 2);
        // Trial 0 succeeded first try; no retries, no recorded failures.
        assert_eq!(outcomes[0].attempts, 1);
        assert!(outcomes[0].failures.is_empty());
        assert!(outcomes[0].ok().is_some());
        // Trial 1 keeps stalling (the budget retries with it) and records
        // every attempt.
        assert_eq!(outcomes[1].attempts, 3);
        assert_eq!(outcomes[1].failures.len(), 2);
        assert!(outcomes[1].result.is_err());
        // Retry seeds are derived, not repeated.
        assert_ne!(
            cfgs[1].seed,
            cfgs[1].seed ^ super::splitmix64(1),
            "retry must change the seed"
        );
    }

    #[test]
    fn retry_outcomes_map_one_to_one_to_input_indices() {
        // Mixed pass/fail campaign with per-trial distinguishable
        // configs: every outcome must sit in the slot of the config that
        // produced it — pass/fail pattern, env kind and iteration count
        // all have to line up, sequentially and on the pool alike.
        let corpus = tiny_corpus();
        let cfgs = [
            RunConfig {
                seed: 101,
                ..cfg(EnvKind::Native, 2)
            },
            RunConfig {
                max_events: 50,
                seed: 102,
                ..cfg(EnvKind::Vm(2), 3)
            },
            RunConfig {
                seed: 103,
                ..cfg(EnvKind::Container(4), 4)
            },
            RunConfig {
                max_events: 50,
                seed: 104,
                ..cfg(EnvKind::Native, 5)
            },
            RunConfig {
                seed: 105,
                ..cfg(EnvKind::Vm(4), 6)
            },
        ];
        for jobs in [1usize, 4] {
            let outcomes = run_configs_retry_jobs(&cfgs, &corpus, 1, jobs);
            assert_eq!(outcomes.len(), cfgs.len(), "jobs={jobs}");
            for (i, (o, input)) in outcomes.iter().zip(&cfgs).enumerate() {
                if input.max_events > 0 {
                    // Budget-killed trials fail on every derived seed.
                    assert!(o.result.is_err(), "jobs={jobs}: slot {i} should fail");
                    assert_eq!(o.attempts, 2, "jobs={jobs}: slot {i} retried once");
                } else {
                    let res = o
                        .ok()
                        .unwrap_or_else(|| panic!("jobs={jobs}: slot {i} failed"));
                    assert_eq!(o.attempts, 1, "jobs={jobs}: slot {i}");
                    // The result's embedded config identifies the input.
                    assert_eq!(res.config.seed, input.seed, "jobs={jobs}: slot {i}");
                    assert_eq!(res.config.env.kind, input.env.kind, "jobs={jobs}: slot {i}");
                    assert_eq!(
                        res.config.iterations, input.iterations,
                        "jobs={jobs}: slot {i}"
                    );
                    assert!(res
                        .sites
                        .iter()
                        .all(|s| s.samples.len() == 4 * input.iterations));
                }
            }
        }
    }

    #[test]
    fn jobs_counts_produce_identical_outcome_vectors() {
        let corpus = tiny_corpus();
        let cfgs = [
            cfg(EnvKind::Native, 2),
            RunConfig {
                max_events: 50,
                ..cfg(EnvKind::Vm(2), 2)
            },
            cfg(EnvKind::Container(2), 3),
        ];
        let seq = run_configs_jobs(&cfgs, &corpus, 1);
        for jobs in [2usize, 4, 0] {
            let par = run_configs_jobs(&cfgs, &corpus, jobs);
            for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
                match (a, b) {
                    (Ok(x), Ok(y)) => {
                        assert_eq!(x.sim_ns, y.sim_ns, "jobs={jobs}: slot {i}");
                        assert_eq!(x.events, y.events, "jobs={jobs}: slot {i}");
                        for (sa, sb) in x.sites.iter().zip(&y.sites) {
                            assert_eq!(sa.samples.raw(), sb.samples.raw());
                        }
                    }
                    (Err(RunError::Sim(x)), Err(RunError::Sim(y))) => {
                        assert_eq!(x, y, "jobs={jobs}: slot {i}")
                    }
                    other => panic!("jobs={jobs}: slot {i} diverged: {other:?}"),
                }
            }
        }
    }

    #[test]
    fn poisoned_trial_is_isolated_from_pool_siblings() {
        // A hook that panics on one trial must surface as Panicked in
        // that slot only; sibling trials on the same workers complete.
        let corpus = tiny_corpus();
        let cfgs = [
            cfg(EnvKind::Native, 2),
            cfg(EnvKind::Vm(2), 2),
            cfg(EnvKind::Container(2), 2),
            cfg(EnvKind::Native, 3),
        ];
        for jobs in [1usize, 3] {
            let results = run_configs_hooked(&cfgs, &corpus, jobs, &|i, _| {
                if i == 1 {
                    panic!("poisoned trial {i}");
                }
            });
            assert_eq!(results.len(), 4);
            for (i, r) in results.iter().enumerate() {
                if i == 1 {
                    match r {
                        Err(RunError::Panicked(msg)) => {
                            assert!(msg.contains("poisoned trial 1"), "jobs={jobs}: {msg}")
                        }
                        other => panic!("jobs={jobs}: expected panic slot, got {other:?}"),
                    }
                } else {
                    let ok = r
                        .as_ref()
                        .unwrap_or_else(|e| panic!("jobs={jobs}: sibling {i} lost: {e}"));
                    assert_eq!(ok.sites.len(), 8, "jobs={jobs}");
                }
            }
        }
    }

    #[test]
    fn retried_success_is_kept() {
        // A trial whose failure is seed-independent keeps failing; one
        // with a sane config succeeds on attempt 1 and is never re-run.
        // Here we check the bookkeeping when everything succeeds.
        let corpus = tiny_corpus();
        let outcomes = run_configs_retry(&[cfg(EnvKind::Native, 2)], &corpus, 3);
        assert_eq!(outcomes[0].attempts, 1);
        assert!(outcomes[0].ok().is_some());
    }

    #[test]
    fn outcomes_json_reports_partial_results() {
        let corpus = tiny_corpus();
        let cfgs = [
            cfg(EnvKind::Native, 2),
            RunConfig {
                max_events: 50,
                ..cfg(EnvKind::Native, 2)
            },
        ];
        let outcomes = run_configs_retry(&cfgs, &corpus, 1);
        let json = outcomes_to_json(&outcomes);
        let v = ksa_json::parse(&json).unwrap();
        let arr = v.as_array().unwrap();
        assert_eq!(arr.len(), 2);
        assert!(arr[0].get("ok").unwrap().as_bool().unwrap());
        assert!(arr[0].get("samples").unwrap().as_u64().unwrap() > 0);
        assert!(!arr[1].get("ok").unwrap().as_bool().unwrap());
        let err = arr[1].get("error").unwrap().as_str().unwrap();
        assert!(
            err.contains("stall") || err.contains("livelock") || err.contains("budget"),
            "error string should describe the stall: {err}"
        );
    }

    #[test]
    fn metrics_are_observationally_neutral() {
        // The ablation_obs gate in unit-test form: a metered run must be
        // bit-identical to an unmetered one — same clock, same samples,
        // same event count.
        let corpus = tiny_corpus();
        let off = run(&cfg(EnvKind::Vm(2), 2), &corpus).unwrap();
        let on = run(
            &RunConfig {
                metrics: true,
                ..cfg(EnvKind::Vm(2), 2)
            },
            &corpus,
        )
        .unwrap();
        assert_eq!(off.sim_ns, on.sim_ns, "telemetry must not perturb timing");
        assert_eq!(off.events, on.events, "telemetry must not add events");
        for (a, b) in off.sites.iter().zip(&on.sites) {
            assert_eq!(a.samples.raw(), b.samples.raw());
        }
        assert!(!off.metrics.enabled());
        assert_eq!(off.metrics.metrics().len(), 0);
        assert!(on.metrics.enabled());
        assert!(on.metrics.samples_taken >= 1);
    }

    #[test]
    fn metrics_totals_equal_the_attribution_table() {
        // Exact-sum gate: per-category syscall_ns/syscall_calls series
        // must mirror the attribution table to the nanosecond, and the
        // engine's own dispatch counter must equal the processed count.
        let corpus = tiny_corpus();
        let res = run(
            &RunConfig {
                metrics: true,
                ..cfg(EnvKind::Native, 3)
            },
            &corpus,
        )
        .unwrap();
        let grand = res.attrib.grand_total();
        assert_eq!(res.metrics.total("syscall_ns"), grand.total);
        assert_eq!(res.metrics.total("syscall_calls"), res.attrib.calls());
        for (cat, (calls, agg)) in res.attrib.by_category() {
            let label = [("category", cat.name())];
            assert_eq!(
                res.metrics.value_of("syscall_calls", &label),
                Some(*calls),
                "{cat:?}: call count"
            );
            assert_eq!(
                res.metrics.value_of("syscall_ns", &label),
                Some(agg.total),
                "{cat:?}: total ns"
            );
        }
        // Engine self-profile rode along in the same registry.
        assert_eq!(res.metrics.total("engine_events_dispatched"), res.events);
        // Lock-wait fold matches the engine's contention profile (both
        // are read from the same per-lock grant bookkeeping).
        assert_eq!(
            res.metrics.total("lock_wait_ns"),
            res.contention.total_wait_ns()
        );
    }

    #[test]
    fn panic_isolation_reports_message() {
        // Force a panic through the public isolation path by driving a
        // corpus with an out-of-range Ref argument resolved against an
        // empty result list — dispatch itself must not panic, so panic
        // via the watchdog-free harness instead: use catch_unwind on a
        // deliberately panicking closure to exercise panic_message.
        let msg = match catch_unwind(AssertUnwindSafe(|| -> Result<(), RunError> {
            panic!("boom {}", 42);
        })) {
            Ok(_) => unreachable!(),
            Err(payload) => panic_message(payload.as_ref()),
        };
        assert_eq!(msg, "boom 42");
    }
}
