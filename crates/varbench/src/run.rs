//! Running a corpus over an environment and aggregating samples.

use std::rc::Rc;

use ksa_desim::{Engine, EngineParams};
use ksa_envsim::{build_env, EnvSpec};
use ksa_kernel::prog::Corpus;
use ksa_kernel::world::{HasKernel, KernelWorld};
use ksa_kernel::{Category, SysNo};
use ksa_stats::Samples;
use serde::{Deserialize, Serialize};

use crate::contention::ContentionProfile;
use crate::worker::{site_bases, CorpusWorker};

/// One measurement run's configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RunConfig {
    /// The environment to deploy.
    pub env: EnvSpec,
    /// Corpus iterations (the paper uses 100).
    pub iterations: usize,
    /// Barrier-synchronize program starts across all cores (the paper's
    /// default; `false` is the ablation).
    pub sync: bool,
    /// Trial seed.
    pub seed: u64,
}

/// Per-site aggregated latencies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SiteResult {
    /// Program index in the corpus.
    pub prog: usize,
    /// Call index within the program.
    pub call: usize,
    /// The syscall at this site.
    pub sysno: SysNo,
    /// All latency samples (cores × iterations).
    pub samples: Samples,
}

impl SiteResult {
    /// Whether this site belongs to `cat`.
    pub fn in_category(&self, cat: Category) -> bool {
        self.sysno.categories().contains(&cat)
    }
}

/// A completed run.
#[derive(Debug, Serialize, Deserialize)]
pub struct RunResult {
    /// The configuration that produced it.
    pub config: RunConfig,
    /// Per-site results, ordered by (prog, call).
    pub sites: Vec<SiteResult>,
    /// Final virtual clock (run length in simulated time).
    pub sim_ns: u64,
    /// Which kernel locks were contended during the run.
    pub contention: ContentionProfile,
}

impl RunResult {
    /// Iterates over sites in `cat`.
    pub fn sites_in(&self, cat: Category) -> impl Iterator<Item = &SiteResult> {
        self.sites.iter().filter(move |s| s.in_category(cat))
    }

    /// Collects one summary value per site via `f` (e.g. median or max),
    /// optionally filtered to a category.
    pub fn per_site(
        &mut self,
        cat: Option<Category>,
        f: impl Fn(&mut Samples) -> Option<u64>,
    ) -> Vec<u64> {
        self.sites
            .iter_mut()
            .filter(|s| cat.is_none_or(|c| s.in_category(c)))
            .filter_map(|s| f(&mut s.samples))
            .collect()
    }
}

/// Deploys `corpus` on `cfg.env` with one worker per core and runs to
/// completion, aggregating per-site samples.
pub fn run(cfg: &RunConfig, corpus: &Corpus) -> RunResult {
    run_hooked(cfg, corpus, |_| {})
}

/// Like [`run`], but lets the caller mutate the engine after the
/// environment is built and before workers spawn — used by ablations
/// (e.g. zeroing virtualization profiles to isolate the isolation
/// benefit from the virtualization cost).
pub fn run_hooked(
    cfg: &RunConfig,
    corpus: &Corpus,
    hook: impl FnOnce(&mut Engine<KernelWorld>),
) -> RunResult {
    let mut engine: Engine<KernelWorld> =
        Engine::new(KernelWorld::new(), EngineParams::default(), cfg.seed);
    let built = build_env(&mut engine, &cfg.env, cfg.seed);
    hook(&mut engine);

    let corpus_rc = Rc::new(corpus.clone());
    let bases = Rc::new(site_bases(corpus));
    let barrier = cfg
        .sync
        .then(|| engine.add_barrier(built.cores.len() as u32));
    for (i, &core) in built.cores.iter().enumerate() {
        let (instance, slot) = {
            let w = engine.world().kernel();
            w.locate(core)
        };
        let worker = CorpusWorker::new(
            corpus_rc.clone(),
            bases.clone(),
            cfg.iterations,
            barrier,
            core,
            instance,
            slot,
            cfg.seed ^ (0x9e3779b97f4a7c15u64.wrapping_mul(i as u64 + 1)),
        );
        engine.spawn(core, Box::new(worker), 0);
    }

    let res = engine.run().unwrap_or_else(|e| panic!("varbench run stalled: {e}"));

    // Group records by site key.
    let n_cores = built.cores.len();
    let mut sites: Vec<SiteResult> = Vec::new();
    for (pi, p) in corpus.programs.iter().enumerate() {
        for (ci, call) in p.calls.iter().enumerate() {
            sites.push(SiteResult {
                prog: pi,
                call: ci,
                sysno: call.no,
                samples: Samples::with_capacity(n_cores * cfg.iterations),
            });
        }
    }
    for rec in &res.records {
        let idx = rec.key as usize;
        if idx < sites.len() {
            sites[idx].samples.push(rec.value);
        }
    }
    for s in &mut sites {
        s.samples.freeze();
    }
    let mut contention = ContentionProfile::default();
    for (label, acq, cont) in engine.all_lock_stats() {
        contention.add(label, acq, cont);
    }
    RunResult {
        config: *cfg,
        sites,
        sim_ns: res.clock,
        contention,
    }
}

/// Runs several configurations in parallel OS threads (one engine per
/// thread; results in input order).
pub fn run_configs(configs: &[RunConfig], corpus: &Corpus) -> Vec<RunResult> {
    let mut out: Vec<Option<RunResult>> = Vec::new();
    out.resize_with(configs.len(), || None);
    crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (i, cfg) in configs.iter().enumerate() {
            handles.push((i, s.spawn(move |_| run(cfg, corpus))));
        }
        for (i, h) in handles {
            out[i] = Some(h.join().expect("varbench trial panicked"));
        }
    })
    .expect("crossbeam scope");
    out.into_iter().map(|r| r.unwrap()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ksa_envsim::{EnvKind, Machine};
    use ksa_kernel::{Arg, Call, Program};

    fn tiny_corpus() -> Corpus {
        Corpus {
            programs: vec![
                Program {
                    calls: vec![
                        Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                        Call::new(SysNo::Write, vec![Arg::Ref(0), Arg::Const(8192)]),
                        Call::new(SysNo::Fsync, vec![Arg::Ref(0)]),
                        Call::new(SysNo::Close, vec![Arg::Ref(0)]),
                    ],
                },
                Program {
                    calls: vec![
                        Call::new(SysNo::Mmap, vec![Arg::Const(32), Arg::Const(1)]),
                        Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
                    ],
                },
                Program {
                    calls: vec![
                        Call::new(SysNo::Getpid, vec![]),
                        Call::new(SysNo::SchedYield, vec![]),
                    ],
                },
            ],
        }
    }

    fn cfg(kind: EnvKind, iters: usize) -> RunConfig {
        RunConfig {
            env: EnvSpec::new(
                Machine {
                    cores: 4,
                    mem_mib: 1024,
                },
                kind,
            ),
            iterations: iters,
            sync: true,
            seed: 99,
        }
    }

    #[test]
    fn run_collects_all_samples() {
        let corpus = tiny_corpus();
        let res = run(&cfg(EnvKind::Native, 5), &corpus);
        assert_eq!(res.sites.len(), 8);
        for s in &res.sites {
            assert_eq!(
                s.samples.len(),
                4 * 5,
                "site {}/{} ({}) should have cores×iters samples",
                s.prog,
                s.call,
                s.sysno.name()
            );
        }
        assert!(res.sim_ns > 0);
    }

    #[test]
    fn sync_serializes_program_starts() {
        // With sync on, all cores execute program boundaries together;
        // latencies for the contended fsync site should exceed the
        // unsynced case on average (contention is concentrated).
        let corpus = tiny_corpus();
        let mut synced = run(&cfg(EnvKind::Native, 10), &corpus);
        let mut unsynced = run(
            &RunConfig {
                sync: false,
                ..cfg(EnvKind::Native, 10)
            },
            &corpus,
        );
        // Just verify both produce complete data and the synced run is
        // not faster in total (barriers serialize).
        assert!(synced.sim_ns >= unsynced.sim_ns / 4);
        let s_med = synced.per_site(None, |s| s.median());
        let u_med = unsynced.per_site(None, |s| s.median());
        assert_eq!(s_med.len(), u_med.len());
    }

    #[test]
    fn vm_env_runs_and_isolates() {
        let corpus = tiny_corpus();
        let res = run(&cfg(EnvKind::Vm(4), 5), &corpus);
        assert_eq!(res.sites.len(), 8);
        for s in &res.sites {
            assert_eq!(s.samples.len(), 20);
        }
    }

    #[test]
    fn container_env_runs() {
        let corpus = tiny_corpus();
        let res = run(&cfg(EnvKind::Container(4), 3), &corpus);
        assert_eq!(res.sites[0].samples.len(), 12);
    }

    #[test]
    fn per_site_filters_by_category() {
        let corpus = tiny_corpus();
        let mut res = run(&cfg(EnvKind::Native, 2), &corpus);
        let mm = res.per_site(Some(Category::Memory), |s| s.median());
        assert_eq!(mm.len(), 2, "mmap + munmap");
        let all = res.per_site(None, |s| s.median());
        assert_eq!(all.len(), 8);
    }

    #[test]
    fn runs_are_deterministic() {
        let corpus = tiny_corpus();
        let a = run(&cfg(EnvKind::Native, 3), &corpus);
        let b = run(&cfg(EnvKind::Native, 3), &corpus);
        assert_eq!(a.sim_ns, b.sim_ns);
        for (x, y) in a.sites.iter().zip(&b.sites) {
            assert_eq!(x.samples.raw(), y.samples.raw());
        }
    }

    #[test]
    fn parallel_configs_match_serial() {
        let corpus = tiny_corpus();
        let cfgs = [cfg(EnvKind::Native, 2), cfg(EnvKind::Vm(2), 2)];
        let par = run_configs(&cfgs, &corpus);
        let ser: Vec<RunResult> = cfgs.iter().map(|c| run(c, &corpus)).collect();
        for (p, s) in par.iter().zip(&ser) {
            assert_eq!(p.sim_ns, s.sim_ns);
        }
    }
}
