//! Property tests for fault-injected measurement trials.
//!
//! Determinism: two trials with the same seed and the same `FaultPlan`
//! must produce bit-identical latency samples. Isolation: fault plans
//! targeting disjoint sites must not interfere — injecting at site A
//! leaves the latencies of calls that only touch site B's error path
//! unchanged relative to a plan that never fires.

use ksa_desim::{FaultKind, FaultPlan, FaultSchedule};
use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_kernel::prog::Corpus;
use ksa_kernel::{Arg, Call, Program, SysNo};
use ksa_varbench::{run_hooked, RunConfig, RunResult};

fn corpus() -> Corpus {
    Corpus {
        programs: vec![
            Program {
                calls: vec![
                    Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                    Call::new(SysNo::Write, vec![Arg::Ref(0), Arg::Const(8192)]),
                    Call::new(SysNo::Fsync, vec![Arg::Ref(0)]),
                    Call::new(SysNo::Close, vec![Arg::Ref(0)]),
                ],
            },
            Program {
                calls: vec![
                    Call::new(SysNo::Mmap, vec![Arg::Const(32), Arg::Const(1)]),
                    Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
                ],
            },
        ],
    }
}

fn cfg(seed: u64) -> RunConfig {
    RunConfig {
        env: EnvSpec::new(
            Machine {
                cores: 4,
                mem_mib: 2048,
            },
            EnvKind::Native,
        ),
        iterations: 6,
        sync: true,
        seed,
        max_events: 0,
        trace: false,
        metrics: false,
        spec: None,
    }
}

fn run_with_plan(seed: u64, plan: FaultPlan) -> RunResult {
    run_hooked(&cfg(seed), &corpus(), |engine| engine.set_fault_plan(plan))
        .expect("fault-injected trial failed")
}

#[test]
fn same_seed_and_plan_replay_bit_identically() {
    let plan = FaultPlan::new(0xfa17)
        .site(
            FaultKind::IoError,
            "io.fsync.data".to_string(),
            FaultSchedule::EveryNth(3),
        )
        .site(
            FaultKind::AllocFail,
            "mm.mmap.vma".to_string(),
            FaultSchedule::ProbMilli(200),
        );
    let a = run_with_plan(21, plan.clone());
    let b = run_with_plan(21, plan);
    assert_eq!(a.sim_ns, b.sim_ns);
    assert_eq!(a.sites.len(), b.sites.len());
    for (x, y) in a.sites.iter().zip(&b.sites) {
        assert_eq!(
            x.samples.raw(),
            y.samples.raw(),
            "site {}/{} ({}) diverged under an identical plan",
            x.prog,
            x.call,
            x.sysno.name()
        );
    }
}

#[test]
fn different_plans_diverge() {
    // Sanity check that the injection actually changes timing — without
    // it, the determinism test above would pass vacuously.
    let hot = FaultPlan::new(1)
        .site(
            FaultKind::IoError,
            "io.fsync.data".to_string(),
            FaultSchedule::EveryNth(2),
        )
        .site(
            FaultKind::AllocFail,
            "mm.mmap.vma".to_string(),
            FaultSchedule::EveryNth(2),
        );
    let a = run_with_plan(21, hot);
    let b = run_with_plan(21, FaultPlan::none());
    let diverged = a
        .sites
        .iter()
        .zip(&b.sites)
        .any(|(x, y)| x.samples.raw() != y.samples.raw());
    assert!(diverged, "an EveryNth(2) fault plan must change latencies");
}

#[test]
fn disjoint_fault_sites_do_not_interfere() {
    // A plan failing only memory-side allocations must leave the
    // mmap/munmap program's samples identical to a plan that schedules a
    // *different*, never-reached file-I/O site: the decision hash is
    // per-site, so an unrelated schedule entry cannot perturb it.
    let mm_only = FaultPlan::new(7).site(
        FaultKind::AllocFail,
        "mm.mmap.vma".to_string(),
        FaultSchedule::EveryNth(2),
    );
    let mm_plus_unreached = FaultPlan::new(7)
        .site(
            FaultKind::AllocFail,
            "mm.mmap.vma".to_string(),
            FaultSchedule::EveryNth(2),
        )
        .site(
            FaultKind::IoError,
            "io.read.disk".to_string(), // corpus never reads: site unreached
            FaultSchedule::EveryNth(1),
        );
    let a = run_with_plan(33, mm_only);
    let b = run_with_plan(33, mm_plus_unreached);
    assert_eq!(
        a.sim_ns, b.sim_ns,
        "unreached site's schedule leaked into timing"
    );
    for (x, y) in a.sites.iter().zip(&b.sites) {
        assert_eq!(x.samples.raw(), y.samples.raw());
    }
}
