//! Regression test for the coverage-registry **poison cascade**.
//!
//! Before the registry rework, every coverage call funneled through one
//! global `Mutex<Registry>` taken with `.lock().unwrap()`. A trial that
//! panicked *while holding* the registry lock — the easiest way being a
//! diagnostic `block_name` reverse lookup on a garbage id, which indexed
//! `names[id]` under the guard — poisoned the mutex, and from then on
//! every `registry().lock().unwrap()` in every sibling trial re-panicked.
//! Per-trial `catch_unwind` isolation dutifully caught each cascade
//! panic, so an entire parallel campaign silently degraded into a vector
//! of `Panicked` slots because of one bad trial.
//!
//! On the old `coverage.rs` this test fails (the siblings come back
//! `Panicked("...PoisonError...")`); after the rework it passes: the
//! reverse lookup is total, the registry locks recover from poison, and
//! sibling trials keep recording coverage.

use ksa_kernel::coverage::{self, BlockId};
use ksa_kernel::prog::Corpus;
use ksa_kernel::{Arg, Call, Program, SysNo};
use ksa_varbench::{run_configs_hooked, RunConfig, RunError};

use ksa_envsim::{EnvKind, EnvSpec, Machine};

fn tiny_corpus() -> Corpus {
    Corpus {
        programs: vec![
            Program {
                calls: vec![
                    Call::new(SysNo::Open, vec![Arg::Const(1), Arg::Const(1)]),
                    Call::new(SysNo::Write, vec![Arg::Ref(0), Arg::Const(8192)]),
                    Call::new(SysNo::Fsync, vec![Arg::Ref(0)]),
                    Call::new(SysNo::Close, vec![Arg::Ref(0)]),
                ],
            },
            Program {
                calls: vec![
                    Call::new(SysNo::Mmap, vec![Arg::Const(32), Arg::Const(1)]),
                    Call::new(SysNo::Munmap, vec![Arg::Ref(0)]),
                ],
            },
        ],
    }
}

fn cfg(seed: u64) -> RunConfig {
    RunConfig {
        env: EnvSpec::new(
            Machine {
                cores: 4,
                mem_mib: 1024,
            },
            EnvKind::Native,
        ),
        iterations: 3,
        sync: true,
        seed,
        max_events: 0,
        trace: false,
        metrics: false,
        spec: None,
    }
}

#[test]
fn panicking_trial_does_not_poison_sibling_coverage() {
    let corpus = tiny_corpus();
    // Six trials on four pool workers: the poisoning trial runs
    // concurrently with real coverage-recording siblings.
    let cfgs: Vec<RunConfig> = (0..6).map(|i| cfg(1000 + i)).collect();
    let poison_at = 0usize; // first trial poisons at campaign start
    let results = run_configs_hooked(&cfgs, &corpus, 4, &|i, _engine| {
        if i == poison_at {
            // The historical poison vector: a diagnostic reverse lookup
            // on a corrupted id used to index out of bounds while the
            // registry guard was held, poisoning the lock for everyone.
            let name = coverage::block_name(BlockId(u32::MAX - 1));
            panic!("deliberate trial panic (bogus block resolves to {name:?})");
        }
    });

    assert_eq!(results.len(), cfgs.len());
    for (i, r) in results.iter().enumerate() {
        if i == poison_at {
            match r {
                Err(RunError::Panicked(msg)) => {
                    assert!(
                        msg.contains("deliberate trial panic"),
                        "slot {i}: unexpected panic message: {msg}"
                    );
                }
                other => panic!("slot {i}: expected the deliberate panic, got {other:?}"),
            }
            continue;
        }
        // Every sibling must have completed AND recorded full coverage-
        // instrumented samples — on the old registry they all die with
        // a PoisonError cascade instead.
        let ok = r
            .as_ref()
            .unwrap_or_else(|e| panic!("sibling trial {i} lost to the cascade: {e}"));
        assert_eq!(ok.sites.len(), 6, "slot {i}");
        assert!(
            ok.sites.iter().all(|s| s.samples.len() == 4 * 3),
            "slot {i}: sibling must keep all cores×iters samples"
        );
    }

    // The registry itself must stay usable after the campaign: interning,
    // reverse lookup, err classification and universe queries all work.
    let before = coverage::block_universe();
    assert!(before > 0, "the campaign interned handler blocks");
    let fresh = coverage::block("cov.poison.regression.after_campaign");
    assert_eq!(
        coverage::block_name(fresh),
        "cov.poison.regression.after_campaign"
    );
    assert_eq!(coverage::block_universe(), before + 1);
    let err = coverage::block_err("cov.poison.regression.err");
    assert!(coverage::is_error_block(err));
    // And interning stays stable (no re-leak, no new ids on re-hit).
    assert_eq!(
        coverage::block("cov.poison.regression.after_campaign"),
        fresh
    );
    assert_eq!(coverage::block_universe(), before + 2);
}

#[test]
fn campaign_coverage_is_identical_across_pool_widths() {
    // Coverage decisions must not depend on pool scheduling: the same
    // campaign at jobs=1 and jobs=4 yields bit-identical per-site samples
    // (interning order may differ between processes, but ids are stable
    // within one, so coverage-guided behaviour cannot diverge).
    let corpus = tiny_corpus();
    let cfgs: Vec<RunConfig> = (0..4).map(|i| cfg(2000 + i)).collect();
    let seq = run_configs_hooked(&cfgs, &corpus, 1, &|_, _| {});
    let par = run_configs_hooked(&cfgs, &corpus, 4, &|_, _| {});
    for (i, (a, b)) in seq.iter().zip(&par).enumerate() {
        let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
        assert_eq!(a.sim_ns, b.sim_ns, "slot {i}");
        assert_eq!(a.events, b.events, "slot {i}");
        for (sa, sb) in a.sites.iter().zip(&b.sites) {
            assert_eq!(sa.samples.raw(), sb.samples.raw(), "slot {i}");
        }
    }
}
