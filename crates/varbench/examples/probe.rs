//! Calibration probe: quick look at per-site latency distributions in
//! the three headline environments. Dev tool, not a paper experiment.

use ksa_envsim::{EnvKind, EnvSpec, Machine};
use ksa_stats::{fmt_ns, BucketTable};
use ksa_syzgen::{generate, GenConfig};
use ksa_varbench::{run, RunConfig};

fn main() {
    let t0 = std::time::Instant::now();
    let gen = generate(GenConfig {
        seed: 42,
        max_programs: 60,
        stall_limit: 300,
        mutate_pct: 70,
        minimize: true,
    });
    eprintln!(
        "corpus: {} programs, {} calls, {} blocks ({:?})",
        gen.corpus.len(),
        gen.corpus.total_calls(),
        gen.stats.blocks,
        t0.elapsed()
    );

    let machine = Machine::epyc_64();
    let mut med_table = BucketTable::new("medians");
    let mut p99_table = BucketTable::new("p99s");
    let mut max_table = BucketTable::new("maxes");
    for kind in [
        EnvKind::Native,
        EnvKind::Vm(64),
        EnvKind::Container(64),
        EnvKind::Vm(1),
    ] {
        let t = std::time::Instant::now();
        let mut res = run(
            &RunConfig {
                env: EnvSpec::new(machine, kind),
                iterations: 20,
                sync: true,
                seed: 7,
                max_events: 0,
                trace: false,
                metrics: false,
                spec: None,
            },
            &gen.corpus,
        )
        .expect("trial failed");
        let meds = res.per_site(None, |s| s.median());
        let p99s = res.per_site(None, |s| s.p99());
        let maxes = res.per_site(None, |s| s.max());
        med_table.push_values(kind.label(), &meds);
        p99_table.push_values(kind.label(), &p99s);
        max_table.push_values(kind.label(), &maxes);
        let mut all: Vec<u64> = p99s.clone();
        all.sort_unstable();
        eprintln!(
            "{:<12} simtime={} wall={:?} p99 med-of-sites={} worst-site-p99={}",
            kind.label(),
            fmt_ns(res.sim_ns),
            t.elapsed(),
            fmt_ns(all[all.len() / 2]),
            fmt_ns(*all.last().unwrap()),
        );
    }
    println!("{}", med_table.render());
    println!("{}", p99_table.render());
    println!("{}", max_table.render());

    // Worst native sites by median, to see what dominates contention.
    let mut res = run(
        &RunConfig {
            env: EnvSpec::new(machine, EnvKind::Native),
            iterations: 20,
            sync: true,
            seed: 7,
            max_events: 0,
            trace: false,
            metrics: false,
            spec: None,
        },
        &gen.corpus,
    )
    .expect("trial failed");
    let mut by_med: Vec<(u64, u64, String)> = res
        .sites
        .iter_mut()
        .map(|s| {
            (
                s.samples.median().unwrap_or(0),
                s.samples.p99().unwrap_or(0),
                s.sysno.name().to_string(),
            )
        })
        .collect();
    by_med.sort_by_key(|x| std::cmp::Reverse(x.0));
    println!("top native sites by median:");
    for (med, p99, name) in by_med.iter().take(15) {
        println!(
            "  {:<18} med={:<10} p99={}",
            name,
            fmt_ns(*med),
            fmt_ns(*p99)
        );
    }
}
