//! Net storm: barrier-synced socket pressure across the VM ladder.
//!
//! Every core runs the same networking-heavy program under barrier
//! synchronization, so all sockets hammer the kernel's softirq path,
//! NIC rings, and socket-table buckets at once — the worst case for a
//! shared stack. Sweeping 1 → 64 VMs over the same 64 cores splits
//! those structures into ever-smaller surfaces; the Network-category
//! tail should fall as the ladder descends, while per-packet virtio
//! exits keep the VM medians above bare-metal cost.
//!
//! Run with: `cargo run --release --example net_storm`

use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
use ksa_core::experiments::{net_corpus, Scale};
use ksa_core::kernel::Category;
use ksa_core::varbench::{run, RunConfig};
use ksa_core::KernelSurfaceArea;

fn main() {
    let machine = Machine {
        cores: 64,
        mem_mib: 64 * 1024,
    };
    let corpus = net_corpus(Scale::Tiny);
    println!(
        "net storm: {} programs on {} cores, barrier-synced\n",
        corpus.len(),
        machine.cores
    );

    println!(
        "{:>6}  {:>22}  {:>12}  {:>12}  softirq contention",
        "VMs", "surface per kernel", "net med-p99", "net max-p99"
    );
    for count in [1usize, 4, 16, 64] {
        let spec = EnvSpec::new(machine, EnvKind::Vm(count));
        let surface = KernelSurfaceArea::of(&spec);
        let mut res = run(
            &RunConfig {
                env: spec,
                iterations: 2,
                sync: true,
                seed: 42,
                max_events: 0,
            },
            &corpus,
        )
        .expect("net storm trial failed");
        let mut p99s = res.per_site(Some(Category::Network), |s| s.p99());
        p99s.sort_unstable();
        let med = p99s.get(p99s.len() / 2).copied().unwrap_or(0);
        let max = p99s.last().copied().unwrap_or(0);
        let softirq = res
            .contention
            .by_label
            .get("softirq")
            .map(|c| format!("{}/{} ({:.1}%)", c.contended, c.acquisitions, 100.0 * c.contention_rate()))
            .unwrap_or_else(|| "-".into());
        println!(
            "{count:>6}  {surface:>22}  {med:>10}ns  {max:>10}ns  {softirq}",
            surface = surface.to_string()
        );
    }

    println!(
        "\nshared-kernel hotspots at 1 VM come from the softirq, \
         nic_queue, and sock_bucket locks; at 64 VMs each kernel owns a \
         single queue and bucket set, so the storm stays local"
    );
}
