//! Net storm: barrier-synced socket pressure across the VM ladder.
//!
//! Every core runs the same networking-heavy program under barrier
//! synchronization, so all sockets hammer the kernel's softirq path,
//! NIC rings, and socket-table buckets at once — the worst case for a
//! shared stack. Sweeping 1 → 64 VMs over the same 64 cores splits
//! those structures into ever-smaller surfaces; the Network-category
//! tail should fall as the ladder descends, while per-packet virtio
//! exits keep the VM medians above bare-metal cost.
//!
//! Run with: `cargo run --release --example net_storm`
//!
//! Pass `--trace-out <path>` to record the shared-kernel (1 VM) run
//! with the deterministic tracer and write a Chrome trace-event file
//! (loadable in Perfetto / `chrome://tracing`) to `<path>`, plus the
//! machine-readable attribution summary next to it.

use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
use ksa_core::experiments::{net_corpus, Scale};
use ksa_core::kernel::Category;
use ksa_core::varbench::{attribution_json, chrome_trace_json, run, RunConfig};
use ksa_core::KernelSurfaceArea;

/// `<path>.json` → `<path>.attrib.json`; anything else gets the suffix
/// appended.
fn attrib_path(trace_path: &str) -> String {
    match trace_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.attrib.json"),
        None => format!("{trace_path}.attrib.json"),
    }
}

fn main() {
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path");
                    std::process::exit(2);
                }));
            }
            other => {
                eprintln!("unknown argument {other}; usage: net_storm [--trace-out <path>]");
                std::process::exit(2);
            }
        }
    }
    let machine = Machine {
        cores: 64,
        mem_mib: 64 * 1024,
    };
    let corpus = net_corpus(Scale::Tiny);
    println!(
        "net storm: {} programs on {} cores, barrier-synced\n",
        corpus.len(),
        machine.cores
    );

    println!(
        "{:>6}  {:>22}  {:>12}  {:>12}  softirq contention",
        "VMs", "surface per kernel", "net med-p99", "net max-p99"
    );
    for count in [1usize, 4, 16, 64] {
        let spec = EnvSpec::new(machine, EnvKind::Vm(count));
        let surface = KernelSurfaceArea::of(&spec);
        // Tracing is strictly observational, so turning it on for the
        // shared-kernel run leaves every printed number unchanged.
        let trace = count == 1 && trace_out.is_some();
        let mut res = run(
            &RunConfig {
                env: spec,
                iterations: 2,
                sync: true,
                seed: 42,
                max_events: 0,
                trace,
                metrics: false,
                spec: None,
            },
            &corpus,
        )
        .expect("net storm trial failed");
        if trace {
            let path = trace_out.as_deref().unwrap();
            std::fs::write(path, chrome_trace_json(&res.trace)).expect("write trace");
            let apath = attrib_path(path);
            std::fs::write(&apath, attribution_json(&res.attrib)).expect("write attribution");
            println!(
                "wrote shared-kernel Chrome trace ({} events, {} dropped) to {path}\n\
                 wrote attribution summary ({} calls) to {apath}\n",
                res.trace.total_events(),
                res.trace.total_dropped(),
                res.attrib.calls(),
            );
        }
        let mut p99s = res.per_site(Some(Category::Network), |s| s.p99());
        p99s.sort_unstable();
        let med = p99s.get(p99s.len() / 2).copied().unwrap_or(0);
        let max = p99s.last().copied().unwrap_or(0);
        let softirq = res
            .contention
            .by_label
            .get("softirq")
            .map(|c| {
                format!(
                    "{}/{} ({:.1}%)",
                    c.contended,
                    c.acquisitions,
                    100.0 * c.contention_rate()
                )
            })
            .unwrap_or_else(|| "-".into());
        println!(
            "{count:>6}  {surface:>22}  {med:>10}ns  {max:>10}ns  {softirq}",
            surface = surface.to_string()
        );
    }

    println!(
        "\nshared-kernel hotspots at 1 VM come from the softirq, \
         nic_queue, and sock_bucket locks; at 64 VMs each kernel owns a \
         single queue and bucket set, so the storm stays local"
    );
}
