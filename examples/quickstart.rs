//! Quickstart: generate a coverage-guided syscall corpus, measure it on
//! a shared kernel versus per-core VMs, and print the latency-bucket
//! comparison.
//!
//! Run with: `cargo run --release --example quickstart`

use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
use ksa_core::stats::BucketTable;
use ksa_core::syzgen::{generate, GenConfig};
use ksa_core::varbench::{run, RunConfig};

fn main() {
    // 1. Build a corpus: programs are kept only when they reach kernel
    //    basic blocks no earlier program reached (Syzkaller-style).
    let generated = generate(GenConfig {
        seed: 7,
        max_programs: 40,
        stall_limit: 250,
        mutate_pct: 70,
        minimize: true,
    });
    println!(
        "corpus: {} programs, {} calls, {} kernel blocks covered",
        generated.corpus.len(),
        generated.corpus.total_calls(),
        generated.stats.blocks
    );

    // 2. Deploy it on a 16-core machine, once under one shared kernel
    //    and once as sixteen single-core VMs.
    let machine = Machine {
        cores: 16,
        mem_mib: 8 * 1024,
    };
    let mut table = BucketTable::new("p99 syscall runtimes (cumulative % below each bound)");
    for kind in [EnvKind::Native, EnvKind::Vm(16)] {
        let mut result = run(
            &RunConfig {
                env: EnvSpec::new(machine, kind),
                iterations: 10,
                sync: true,
                seed: 42,
                max_events: 0,
                trace: false,
                metrics: false,
                spec: None,
            },
            &generated.corpus,
        )
        .expect("trial failed");
        let p99s = result.per_site(None, |s| s.p99());
        table.push_values(kind.label(), &p99s);
    }

    // 3. The paper's system model in one table: the shared kernel wins
    //    at small time scales (no virtualization overhead) but pays rare,
    //    large interference penalties; the VMs bound the tail.
    println!("\n{}", table.render());
}
