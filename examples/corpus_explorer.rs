//! Corpus explorer: watch the coverage-guided generation loop work, then
//! inspect what it produced — program shapes, per-category composition
//! and the coverage the corpus reaches.
//!
//! Run with: `cargo run --release --example corpus_explorer`

use ksa_core::kernel::coverage;
use ksa_core::kernel::Category;
use ksa_core::syzgen::{generate, GenConfig, Sandbox};

fn main() {
    let cfg = GenConfig {
        seed: 2024,
        max_programs: 60,
        stall_limit: 400,
        mutate_pct: 70,
        minimize: true,
    };
    let out = generate(cfg);
    println!(
        "generated {} programs / {} calls; executed {} candidates; \
         minimization removed {} calls; {} kernel blocks covered\n",
        out.corpus.len(),
        out.corpus.total_calls(),
        out.stats.executed,
        out.stats.minimized_away,
        out.stats.blocks,
    );

    // Composition by category.
    println!("corpus composition:");
    for cat in Category::ALL {
        let calls = out
            .corpus
            .programs
            .iter()
            .flat_map(|p| &p.calls)
            .filter(|c| c.no.categories().contains(&cat))
            .count();
        println!("  ({}) {:<32} {:>4} calls", cat.letter(), cat.name(), calls);
    }

    // Show a few programs in Syzkaller-ish notation.
    println!("\nsample programs:");
    for p in out.corpus.programs.iter().take(4) {
        println!("---");
        print!("{}", p.render());
    }

    // Replay one program and show the blocks it covers.
    let mut sandbox = Sandbox::new(1);
    if let Some(p) = out.corpus.programs.iter().max_by_key(|p| p.len()) {
        let cov = sandbox.run_fresh(p);
        println!("---\nlongest program covers {} blocks:", cov.len());
        let mut names: Vec<&str> = cov.iter().map(coverage::block_name).collect();
        names.sort_unstable();
        for chunk in names.chunks(6) {
            println!("  {}", chunk.join(", "));
        }
    }
}
