//! Noise anatomy: name the kernel locks behind the variability.
//!
//! Runs the same corpus on one shared kernel and on per-core VMs, then
//! prints each run's lock-contention profile — the structures the paper
//! blames (journal, dcache, runqueues, zone/LRU) show up by name, and
//! the per-core-VM column shows the contention evaporating.
//!
//! Run with: `cargo run --release --example noise_anatomy`

use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
use ksa_core::experiments::{default_corpus, Scale};
use ksa_core::varbench::{run, RunConfig};

fn main() {
    let corpus = default_corpus(Scale::Tiny);
    let machine = Machine {
        cores: 8,
        mem_mib: 4 * 1024,
    };
    for kind in [EnvKind::Native, EnvKind::Vm(8)] {
        let res = run(
            &RunConfig {
                env: EnvSpec::new(machine, kind),
                iterations: 8,
                sync: true,
                seed: 77,
                max_events: 0,
                trace: false,
                metrics: false,
                spec: None,
            },
            &corpus.corpus,
        )
        .expect("trial failed");
        println!("=== {} ===", kind.label());
        println!("{}", res.contention.render());
    }
    println!(
        "shared-kernel hotspots (journal, dcache, zone, runqueues) lose \
         their waiters once each core gets its own kernel"
    );
}
