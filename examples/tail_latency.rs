//! Tail latency under co-located kernel noise: one tailbench app, four
//! deployments (KVM/Docker × isolated/contended) — a single row of the
//! paper's Figure 3.
//!
//! Run with: `cargo run --release --example tail_latency [app-name]`

use ksa_core::experiments::{noise_corpus, Scale};
use ksa_core::stats::fmt_ns;
use ksa_core::tailbench::apps::suite;
use ksa_core::tailbench::single_node::{run_single_node, SingleNodeConfig};

fn main() {
    let want = std::env::args().nth(1).unwrap_or_else(|| "xapian".into());
    let app = suite()
        .into_iter()
        .find(|a| a.name == want)
        .unwrap_or_else(|| {
            eprintln!("unknown app {want}; one of:");
            for a in suite() {
                eprintln!("  {}", a.name);
            }
            std::process::exit(2);
        });
    let noise = noise_corpus(Scale::Tiny);

    println!(
        "app: {} (service ~{}, kernel ~{} per request)\n",
        app.name,
        fmt_ns(app.service_ns),
        fmt_ns(app.kernel_ns)
    );
    println!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}",
        "config", "p50", "p95", "p99", "max"
    );
    for (virt, noisy) in [(true, false), (false, false), (true, true), (false, true)] {
        let cfg = SingleNodeConfig::quick(virt, noisy, 17);
        let mut res = run_single_node(&app, &cfg, &noise);
        let s = res.sojourns.summary().expect("samples");
        println!(
            "{:<22}{:>12}{:>12}{:>12}{:>12}",
            format!(
                "{}{}",
                if virt { "KVM" } else { "Docker" },
                if noisy { " + noise" } else { " isolated" }
            ),
            fmt_ns(s.median),
            fmt_ns(s.p95),
            fmt_ns(s.p99),
            fmt_ns(s.max),
        );
    }
    println!(
        "\nthe paper's claim: the Docker rows blow up under noise (shared \
         kernel), the KVM rows barely move (isolated kernels)"
    );
}
