//! Tail latency under co-located kernel noise: one tailbench app, four
//! deployments (KVM/Docker × isolated/contended) — a single row of the
//! paper's Figure 3.
//!
//! Run with: `cargo run --release --example tail_latency [app-name]`
//!
//! Pass `--trace-out <path>` to also re-run the contended shared-kernel
//! (Docker + noise) configuration with the deterministic tracer and
//! write a Chrome trace-event file (loadable in Perfetto /
//! `chrome://tracing`) to `<path>`, plus the noise corpus's attribution
//! summary next to it and the mean request decomposition on stdout.

use ksa_core::experiments::{noise_corpus, Scale};
use ksa_core::stats::fmt_ns;
use ksa_core::tailbench::apps::suite;
use ksa_core::tailbench::single_node::{run_single_node, SingleNodeConfig};
use ksa_core::varbench::{attribution_json, chrome_trace_json};

/// `<path>.json` → `<path>.attrib.json`; anything else gets the suffix
/// appended.
fn attrib_path(trace_path: &str) -> String {
    match trace_path.strip_suffix(".json") {
        Some(stem) => format!("{stem}.attrib.json"),
        None => format!("{trace_path}.attrib.json"),
    }
}

fn main() {
    let mut want = None;
    let mut trace_out = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--trace-out" => {
                trace_out = Some(args.next().unwrap_or_else(|| {
                    eprintln!("--trace-out requires a path");
                    std::process::exit(2);
                }));
            }
            other => want = Some(other.to_string()),
        }
    }
    let want = want.unwrap_or_else(|| "xapian".into());
    let app = suite()
        .into_iter()
        .find(|a| a.name == want)
        .unwrap_or_else(|| {
            eprintln!("unknown app {want}; one of:");
            for a in suite() {
                eprintln!("  {}", a.name);
            }
            std::process::exit(2);
        });
    let noise = noise_corpus(Scale::Tiny);

    println!(
        "app: {} (service ~{}, kernel ~{} per request)\n",
        app.name,
        fmt_ns(app.service_ns),
        fmt_ns(app.kernel_ns)
    );
    println!(
        "{:<22}{:>12}{:>12}{:>12}{:>12}",
        "config", "p50", "p95", "p99", "max"
    );
    for (virt, noisy) in [(true, false), (false, false), (true, true), (false, true)] {
        let cfg = SingleNodeConfig::quick(virt, noisy, 17);
        let mut res = run_single_node(&app, &cfg, &noise);
        let s = res.sojourns.summary().expect("samples");
        println!(
            "{:<22}{:>12}{:>12}{:>12}{:>12}",
            format!(
                "{}{}",
                if virt { "KVM" } else { "Docker" },
                if noisy { " + noise" } else { " isolated" }
            ),
            fmt_ns(s.median),
            fmt_ns(s.p95),
            fmt_ns(s.p99),
            fmt_ns(s.max),
        );
    }
    println!(
        "\nthe paper's claim: the Docker rows blow up under noise (shared \
         kernel), the KVM rows barely move (isolated kernels)"
    );

    if let Some(path) = trace_out {
        // Re-run the contended shared-kernel configuration with the
        // tracer on. Tracing is strictly observational, so the
        // percentiles match the Docker + noise row above exactly.
        let mut cfg = SingleNodeConfig::quick(false, true, 17);
        cfg.trace = true;
        let res = run_single_node(&app, &cfg, &noise);
        std::fs::write(&path, chrome_trace_json(&res.trace)).expect("write trace");
        let apath = attrib_path(&path);
        std::fs::write(&apath, attribution_json(&res.noise_attrib)).expect("write attribution");
        println!(
            "\nwrote Docker+noise Chrome trace ({} events, {} dropped) to {path}\n\
             wrote noise-corpus attribution summary ({} calls) to {apath}",
            res.trace.total_events(),
            res.trace.total_dropped(),
            res.noise_attrib.calls(),
        );
        let n = res.request_attrib.len() as u64;
        let mean = |total: u64| fmt_ns(total.checked_div(n).unwrap_or(0));
        if n > 0 {
            let queue: u64 = res.request_attrib.iter().map(|r| r.queue_ns).sum();
            let service: u64 = res.request_attrib.iter().map(|r| r.service.total).sum();
            let lock: u64 = res.request_attrib.iter().map(|r| r.service.lock_wait).sum();
            let exits: u64 = res.request_attrib.iter().map(|r| r.service.vm_exit).sum();
            println!(
                "mean request decomposition over {n} requests: queue {} + service {} \
                 (of which lock wait {}, vm exits {})",
                mean(queue),
                mean(service),
                mean(lock),
                mean(exits),
            );
        }
    }
}
