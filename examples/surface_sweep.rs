//! Surface sweep: the paper's central experiment in miniature.
//!
//! Varies the kernel surface area (1 → N VMs over the same hardware and
//! the same workload) and reports how each syscall category's tail
//! responds — reproducing Figure 2's trends plus the correlation
//! analysis.
//!
//! Run with: `cargo run --release --example surface_sweep`

use ksa_core::analysis::{render_trends, surface_trends};
use ksa_core::envsim::{EnvKind, EnvSpec, Machine};
use ksa_core::experiments::{default_corpus, fig2, Scale};
use ksa_core::KernelSurfaceArea;

fn main() {
    let scale = Scale::Tiny;
    let corpus = default_corpus(scale);
    println!(
        "corpus: {} programs / {} calls\n",
        corpus.corpus.len(),
        corpus.corpus.total_calls()
    );

    // Show the surface ladder being swept.
    let machine = Machine {
        cores: 8,
        mem_mib: 4 * 1024,
    };
    println!("surface ladder:");
    let mut n = 1;
    while n <= machine.cores {
        let s = KernelSurfaceArea::of(&EnvSpec::new(machine, EnvKind::Vm(n)));
        println!("  {} VMs -> {} per kernel (scalar {:.1})", n, s, s.scalar());
        n *= 2;
    }

    let result = fig2(&corpus.corpus, scale, 11);
    println!();
    for cat in &result.categories {
        println!(
            "category ({}) {}:",
            cat.category.letter(),
            cat.category.name()
        );
        for v in &cat.violins {
            println!("  {}", v.render_line());
        }
    }
    println!("\n{}", render_trends(&surface_trends(&result)));
    println!(
        "negative correlations = shrinking the kernel surface area \
         reliably shrinks that category's tail latency"
    );
}
